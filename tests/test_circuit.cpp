// Tests for the word-level RTL netlist, simulator and bit-blaster.

#include <gtest/gtest.h>

#include <random>

#include "bench_gen/fig2.h"
#include "bench_gen/iwls.h"
#include "circuit/bitblast.h"
#include "circuit/rtl.h"

namespace c = eda::circuit;
using c::Op;
using c::Rtl;
using c::SignalId;

TEST(Rtl, BuildAndValidate) {
  Rtl r;
  SignalId a = r.add_input("a", 4);
  SignalId reg = r.add_reg("r", 4, 3);
  SignalId sum = r.add_op(Op::Add, {a, reg});
  r.set_reg_next(reg, sum);
  r.add_output("y", sum);
  EXPECT_NO_THROW(r.validate());
  EXPECT_EQ(r.comb_node_count(), 1);
}

TEST(Rtl, WidthChecks) {
  Rtl r;
  SignalId a = r.add_input("a", 4);
  SignalId b = r.add_input("b", 8);
  EXPECT_THROW(r.add_op(Op::Add, {a, b}), c::RtlError);
  SignalId f = r.add_op(Op::Eq, {a, a});
  EXPECT_TRUE(r.is_flag(f));
  // Flags cannot be stored or used as words.
  SignalId reg = r.add_reg("r", 4, 0);
  EXPECT_THROW(r.set_reg_next(reg, f), c::RtlError);
  EXPECT_THROW(r.add_op(Op::Add, {a, f}), c::RtlError);
  // Mux needs a flag select.
  EXPECT_THROW(r.add_op(Op::Mux, {a, a, a}), c::RtlError);
  EXPECT_NO_THROW(r.add_op(Op::Mux, {f, a, a}));
}

TEST(Rtl, MissingRegNextFailsValidation) {
  Rtl r;
  SignalId a = r.add_input("a", 4);
  r.add_reg("r", 4, 0);
  r.add_output("y", a);
  EXPECT_THROW(r.validate(), c::RtlError);
}

TEST(Simulator, CounterBehaviour) {
  // R' = R + 1; y = R.
  Rtl r;
  SignalId a = r.add_input("en", 1);
  (void)a;
  SignalId reg = r.add_reg("r", 4, 0);
  SignalId one = r.add_const(4, 1);
  SignalId inc = r.add_op(Op::Add, {reg, one});
  r.set_reg_next(reg, inc);
  r.add_output("y", reg);
  c::Simulator sim(r);
  for (std::uint64_t k = 0; k < 20; ++k) {
    auto out = sim.step({0});
    EXPECT_EQ(out[0], k % 16);  // wraps at 2^4
  }
}

TEST(Simulator, Fig2Behaviour) {
  // y = (a == b) ? 0 : R + 1; R' = y.
  auto fig2 = eda::bench_gen::make_fig2(4);
  c::Simulator sim(fig2.rtl);
  // a != b for 3 cycles: counts 1, 2, 3.
  EXPECT_EQ(sim.step({1, 2})[0], 1u);
  EXPECT_EQ(sim.step({1, 2})[0], 2u);
  EXPECT_EQ(sim.step({1, 2})[0], 3u);
  // a == b: resets to 0.
  EXPECT_EQ(sim.step({5, 5})[0], 0u);
  EXPECT_EQ(sim.step({1, 2})[0], 1u);
}

TEST(Simulator, AllOpsSmoke) {
  Rtl r;
  SignalId a = r.add_input("a", 8);
  SignalId b = r.add_input("b", 8);
  SignalId reg = r.add_reg("r", 8, 0);
  SignalId ops[] = {
      r.add_op(Op::Add, {a, b}),  r.add_op(Op::Sub, {a, b}),
      r.add_op(Op::Mul, {a, b}),  r.add_op(Op::And, {a, b}),
      r.add_op(Op::Or, {a, b}),   r.add_op(Op::Xor, {a, b}),
      r.add_op(Op::Not, {a}),
  };
  SignalId lt = r.add_op(Op::Lt, {a, b});
  SignalId mux = r.add_op(Op::Mux, {lt, ops[0], ops[1]});
  r.set_reg_next(reg, mux);
  for (int k = 0; k < 7; ++k) {
    r.add_output("o" + std::to_string(k), ops[k]);
  }
  c::Simulator sim(r);
  auto out = sim.step({200, 100});
  EXPECT_EQ(out[0], (200 + 100) % 256);
  EXPECT_EQ(out[1], 100u);
  EXPECT_EQ(out[2], (200 * 100) % 256);
  EXPECT_EQ(out[3], 200u & 100u);
  EXPECT_EQ(out[4], 200u | 100u);
  EXPECT_EQ(out[5], 200u ^ 100u);
  EXPECT_EQ(out[6], (~200u) & 0xFF);
}

TEST(BitBlast, CountsAreSensible) {
  auto fig2 = eda::bench_gen::make_fig2(8);
  c::GateNetlist net = c::bit_blast(fig2.rtl);
  EXPECT_EQ(net.ff_count(), 8);
  EXPECT_GT(net.gate_count(), 8 * 3);
  EXPECT_EQ(net.inputs().size(), 16u);
  EXPECT_EQ(net.outputs().size(), 8u);
}

TEST(BitBlast, MatchesWordSimulatorOnFig2) {
  auto fig2 = eda::bench_gen::make_fig2(5);
  c::Simulator word(fig2.rtl);
  c::GateNetlist net = c::bit_blast(fig2.rtl);
  c::GateSimulator gate(net);
  std::mt19937_64 rng(42);
  for (int cycle = 0; cycle < 200; ++cycle) {
    std::uint64_t a = rng() & 31, b = rng() & 31;
    auto wout = word.step({a, b});
    std::vector<bool> bits;
    for (bool v : c::to_bits(a, 5)) bits.push_back(v);
    for (bool v : c::to_bits(b, 5)) bits.push_back(v);
    auto gout = gate.step(bits);
    EXPECT_EQ(wout[0], c::from_bits(gout)) << "cycle " << cycle;
  }
}

class BitBlastAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BitBlastAgreement, RandomCircuitAgreesWithWordLevel) {
  auto [width, seed] = GetParam();
  // Random small circuit: a few regs and ops driven by 2 inputs.
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  Rtl r;
  std::vector<SignalId> words;
  words.push_back(r.add_input("a", width));
  words.push_back(r.add_input("b", width));
  std::vector<SignalId> regs;
  for (int k = 0; k < 3; ++k) {
    SignalId rg = r.add_reg("r" + std::to_string(k), width, rng() & 7);
    regs.push_back(rg);
    words.push_back(rg);
  }
  std::vector<SignalId> flags;
  for (int k = 0; k < 12; ++k) {
    int pick = static_cast<int>(rng() % 8);
    SignalId x = words[rng() % words.size()];
    SignalId y = words[rng() % words.size()];
    switch (pick) {
      case 0: words.push_back(r.add_op(Op::Add, {x, y})); break;
      case 1: words.push_back(r.add_op(Op::Sub, {x, y})); break;
      case 2: words.push_back(r.add_op(Op::Mul, {x, y})); break;
      case 3: words.push_back(r.add_op(Op::Xor, {x, y})); break;
      case 4: words.push_back(r.add_op(Op::Not, {x})); break;
      case 5: flags.push_back(r.add_op(Op::Eq, {x, y})); break;
      case 6: flags.push_back(r.add_op(Op::Lt, {x, y})); break;
      case 7:
        if (!flags.empty()) {
          words.push_back(
              r.add_op(Op::Mux, {flags[rng() % flags.size()], x, y}));
        } else {
          words.push_back(r.add_op(Op::Or, {x, y}));
        }
        break;
    }
  }
  for (std::size_t k = 0; k < regs.size(); ++k) {
    r.set_reg_next(regs[k], words[words.size() - 1 - k]);
  }
  r.add_output("y", words.back());
  c::Simulator word(r);
  c::GateNetlist net = c::bit_blast(r);
  c::GateSimulator gate(net);
  std::uint64_t mask = (1ULL << width) - 1;
  for (int cycle = 0; cycle < 100; ++cycle) {
    std::uint64_t a = rng() & mask, b = rng() & mask;
    auto wout = word.step({a, b});
    std::vector<bool> bits;
    for (bool v : c::to_bits(a, width)) bits.push_back(v);
    for (bool v : c::to_bits(b, width)) bits.push_back(v);
    auto gout = gate.step(bits);
    EXPECT_EQ(wout[0], c::from_bits(gout)) << "cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, BitBlastAgreement,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(1, 2, 3, 4, 5, 6)));

TEST(BenchGen, IwlsFamilyValidates) {
  for (const auto& b : eda::bench_gen::iwls_benchmarks()) {
    EXPECT_NO_THROW(b.rtl.validate()) << b.name;
    EXPECT_FALSE(b.cut.f_nodes.empty()) << b.name;
    c::GateNetlist net = c::bit_blast(b.rtl);
    EXPECT_GT(net.ff_count(), 0) << b.name;
    EXPECT_GT(net.gate_count(), 0) << b.name;
  }
}

TEST(BenchGen, SimulationEquivalenceDetectsMutation) {
  auto f1 = eda::bench_gen::make_fig2(4);
  auto f2 = eda::bench_gen::make_fig2(4);
  EXPECT_TRUE(c::simulation_equivalent(f1.rtl, f2.rtl, 200, 7));
  // A circuit with a different initial value is inequivalent.
  eda::bench_gen::Fig2 f3 = eda::bench_gen::make_fig2(4);
  Rtl mutated;
  SignalId a = mutated.add_input("a", 4);
  SignalId b = mutated.add_input("b", 4);
  SignalId reg = mutated.add_reg("R", 4, 5);  // wrong init
  SignalId one = mutated.add_const(4, 1);
  SignalId zero = mutated.add_const(4, 0);
  SignalId inc = mutated.add_op(Op::Add, {reg, one});
  SignalId cmp = mutated.add_op(Op::Eq, {a, b});
  SignalId y = mutated.add_op(Op::Mux, {cmp, zero, inc});
  mutated.add_output("y", y);
  mutated.set_reg_next(reg, y);
  EXPECT_FALSE(c::simulation_equivalent(f3.rtl, mutated, 200, 7));
}
