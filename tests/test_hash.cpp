// Integration tests for the HASH formal synthesis core: circuit
// compilation, the formal retiming step (the paper's 4-step procedure),
// faulty-cut rejection, compound steps and formal logic minimisation.

#include <gtest/gtest.h>

#include "bench_gen/fig2.h"
#include "bench_gen/iwls.h"
#include "hash/compile.h"
#include "hash/compound.h"
#include "hash/eval.h"
#include "hash/logic_opt.h"
#include "hash/retime_step.h"
#include "kernel/printer.h"
#include "logic/bool_thms.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"

namespace c = eda::circuit;
namespace h = eda::hash;
namespace k = eda::kernel;
namespace l = eda::logic;
namespace thy = eda::thy;
using k::Term;
using k::Thm;

TEST(Compile, Fig2Shapes) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  h::CompiledCircuit cc = h::compile(fig2.rtl);
  EXPECT_TRUE(cc.h.is_abs());
  // h : (num#num # num) -> ((num) # (num))
  EXPECT_EQ(cc.input_ty, k::prod_ty(k::num_ty(), k::num_ty()));
  EXPECT_EQ(cc.state_ty, k::num_ty());
  // q = 0.
  EXPECT_EQ(cc.q, thy::mk_numeral(0));
}

TEST(Compile, RejectsCircuitsWithoutRegs) {
  c::Rtl r;
  auto a = r.add_input("a", 4);
  r.add_output("y", a);
  EXPECT_THROW(h::compile(r), k::KernelError);
}

TEST(CompileSplit, GoodCutFig2) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  h::SplitCircuit split = h::compile_split(fig2.rtl, fig2.good_cut);
  // f = \s. (s + 1) MOD 16 — one chi component, the incrementer output.
  EXPECT_TRUE(split.f.is_abs());
  ASSERT_EQ(split.chi.size(), 1u);
  EXPECT_EQ(split.chi[0], fig2.good_cut.f_nodes[0]);
}

TEST(CompileSplit, FalseCutThrows) {
  // The paper's fig. 4: f = {comparator, mux} depends on inputs and on the
  // incrementer — the pattern cannot match and the derivation must fail.
  auto fig2 = eda::bench_gen::make_fig2(4);
  EXPECT_THROW(h::compile_split(fig2.rtl, fig2.false_cut), h::CutError);
}

TEST(CompileSplit, CutWithFlagNodeThrows) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  // Cut consisting of just the comparator: a flag cannot be registered.
  h::Cut cut;
  cut.f_nodes = {fig2.false_cut.f_nodes[0]};  // the comparator
  EXPECT_THROW(h::compile_split(fig2.rtl, cut), h::CutError);
}

TEST(GroundEval, PairAndCond) {
  // FST (3, 4) + SND (3, 4)  -->  7
  Term p = thy::mk_pair(thy::mk_numeral(3), thy::mk_numeral(4));
  Term t = thy::mk_arith("+", thy::mk_fst(p), thy::mk_snd(p));
  Thm th = h::ground_eval(t);
  EXPECT_EQ(k::eq_rhs(th.concl()), thy::mk_numeral(7));
  // if (2 = 2) then 5 else 6  -->  5
  Term cond = l::mk_cond(k::mk_eq(thy::mk_numeral(2), thy::mk_numeral(2)),
                         thy::mk_numeral(5), thy::mk_numeral(6));
  EXPECT_EQ(k::eq_rhs(h::ground_eval(cond).concl()), thy::mk_numeral(5));
}

TEST(FormalRetime, Fig2GoodCut) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  h::FormalRetimeResult res = h::formal_retime(fig2.rtl, fig2.good_cut);

  // The theorem exists, with only the compute oracle in its provenance.
  EXPECT_TRUE(res.theorem.hyps().empty());
  for (const auto& tag : res.theorem.oracles()) {
    EXPECT_EQ(tag, thy::kNumComputeTag);
  }

  // The theorem's left side is the *original* compiled circuit.
  h::CompiledCircuit orig = h::compile(fig2.rtl);
  auto [vars, body] = l::strip_forall(res.theorem.concl());
  ASSERT_EQ(vars.size(), 2u);
  Term lhs = k::eq_lhs(body);
  auto [head, args] = k::strip_comb(lhs);
  ASSERT_EQ(args.size(), 4u);
  EXPECT_EQ(args[0], orig.h);
  EXPECT_EQ(args[1], orig.q);
  // And the right side is the compiled retimed circuit.
  h::CompiledCircuit ret = h::compile(res.retimed);
  Term rhs = k::eq_rhs(body);
  auto [head2, args2] = k::strip_comb(rhs);
  EXPECT_EQ(args2[0], ret.h);
  EXPECT_EQ(args2[1], ret.q);

  // New initial value is f(0) = 1 (the paper's D0 -> D(f q) move).
  ASSERT_EQ(res.retimed.regs().size(), 1u);
  EXPECT_EQ(res.retimed.node(res.retimed.regs()[0]).value, 1u);

  // Behavioural check: the retimed netlist is simulation-equivalent.
  EXPECT_TRUE(c::simulation_equivalent(fig2.rtl, res.retimed, 300, 123));
}

TEST(FormalRetime, FalseCutRaisesAndProducesNothing) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  EXPECT_THROW(h::formal_retime(fig2.rtl, fig2.false_cut), h::CutError);
}

TEST(FormalRetime, DeepPipelinePrefixCuts) {
  auto deep = eda::bench_gen::make_fig2_deep(4, 3);
  for (std::size_t m = 1; m <= deep.inc_nodes.size(); ++m) {
    h::Cut cut;
    cut.f_nodes.assign(deep.inc_nodes.begin(),
                       deep.inc_nodes.begin() + static_cast<long>(m));
    h::FormalRetimeResult res = h::formal_retime(deep.rtl, cut);
    EXPECT_TRUE(c::simulation_equivalent(deep.rtl, res.retimed, 200,
                                         static_cast<unsigned>(m)))
        << "prefix " << m;
    // Initial value of the moved register is m (0 incremented m times).
    EXPECT_EQ(res.retimed.node(res.retimed.regs()[0]).value, m);
  }
}

TEST(FormalRetime, IwlsFamily) {
  for (const auto& b : eda::bench_gen::iwls_benchmarks()) {
    SCOPED_TRACE(b.name);
    h::FormalRetimeResult res = h::formal_retime(b.rtl, b.cut);
    EXPECT_TRUE(res.theorem.hyps().empty());
    EXPECT_TRUE(c::simulation_equivalent(b.rtl, res.retimed, 200, 99));
  }
}

TEST(FormalRetime, ConventionalAgreesWithFormal) {
  auto fig2 = eda::bench_gen::make_fig2(6);
  c::Rtl conv = h::conventional_retime(fig2.rtl, fig2.good_cut);
  h::FormalRetimeResult res = h::formal_retime(fig2.rtl, fig2.good_cut);
  EXPECT_TRUE(c::simulation_equivalent(conv, res.retimed, 200, 5));
}

TEST(Compound, TwoRetimingStepsCompose) {
  auto deep = eda::bench_gen::make_fig2_deep(4, 2);
  // Step 1: move registers across the first incrementer.
  h::Cut cut1;
  cut1.f_nodes = {deep.inc_nodes[0]};
  h::FormalRetimeResult s1 = h::formal_retime(deep.rtl, cut1);
  // Step 2: retime the result across its remaining incrementer.
  h::Cut cut2 = eda::bench_gen::max_forward_cut(s1.retimed);
  h::FormalRetimeResult s2 = h::formal_retime(s1.retimed, cut2);
  // Compose: |- !i t. AUT h0 q0 i t = AUT h2 q2 i t.
  Thm compound = h::compose_steps(s1.theorem, s2.theorem);
  auto [vars, body] = l::strip_forall(compound.concl());
  Term lhs = k::eq_lhs(body);
  Term rhs = k::eq_rhs(body);
  h::CompiledCircuit first = h::compile(deep.rtl);
  h::CompiledCircuit last = h::compile(s2.retimed);
  EXPECT_EQ(k::strip_comb(lhs).second[0], first.h);
  EXPECT_EQ(k::strip_comb(rhs).second[0], last.h);
  EXPECT_TRUE(c::simulation_equivalent(deep.rtl, s2.retimed, 200, 11));
}

TEST(LogicOpt, ConstantFoldingAndIdentities) {
  c::Rtl r;
  auto a = r.add_input("a", 4);
  auto reg = r.add_reg("r", 4, 0);
  auto c2 = r.add_const(4, 2);
  auto c3 = r.add_const(4, 3);
  auto five = r.add_op(c::Op::Add, {c2, c3});     // folds to 5
  auto same = r.add_op(c::Op::Eq, {a, a});        // folds to T
  auto pick = r.add_op(c::Op::Mux, {same, five, reg});  // folds to 5
  auto sum = r.add_op(c::Op::Add, {pick, a});
  r.set_reg_next(reg, sum);
  r.add_output("y", sum);
  c::Rtl opt = h::conventional_logic_opt(r);
  EXPECT_LT(opt.comb_node_count(), r.comb_node_count());
  EXPECT_TRUE(c::simulation_equivalent(r, opt, 100, 3));
}

TEST(LogicOpt, FormalTheoremMatchesNetlists) {
  c::Rtl r;
  auto a = r.add_input("a", 4);
  auto reg = r.add_reg("r", 4, 1);
  auto c1 = r.add_const(4, 1);
  auto c1b = r.add_const(4, 1);
  auto dup1 = r.add_op(c::Op::Add, {reg, c1});
  auto dup2 = r.add_op(c::Op::Add, {reg, c1b});   // CSE duplicate
  auto eqf = r.add_op(c::Op::Eq, {dup1, dup2});   // always T after CSE
  auto y = r.add_op(c::Op::Mux, {eqf, dup1, a});
  r.set_reg_next(reg, y);
  r.add_output("y", y);
  h::FormalOptResult res = h::formal_logic_opt(r);
  EXPECT_TRUE(res.theorem.hyps().empty());
  EXPECT_TRUE(c::simulation_equivalent(r, res.optimized, 100, 17));
  EXPECT_LT(res.optimized.comb_node_count(), r.comb_node_count());
}

TEST(Compound, RetimeThenOptimise) {
  // The paper's headline combination: retiming followed by logic
  // minimisation, verified end-to-end by one transitivity application.
  auto fig2 = eda::bench_gen::make_fig2(4);
  h::FormalRetimeResult rt = h::formal_retime(fig2.rtl, fig2.good_cut);
  h::FormalOptResult op = h::formal_logic_opt(rt.retimed);
  Thm compound = h::compose_steps(rt.theorem, op.theorem);
  EXPECT_TRUE(compound.hyps().empty());
  EXPECT_TRUE(c::simulation_equivalent(fig2.rtl, op.optimized, 300, 21));
}
