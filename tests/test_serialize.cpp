// Tests for the persistent goal cache: the kernel term/type/theorem
// serializer (kernel/serialize.h), GoalCache save/load, the service's
// PersistentCacheFile (atomic save, corruption-tolerant load), and
// concurrent snapshot-while-draining.  The corruption cases are the
// designated ASan workload for this layer; the concurrency case runs on
// the TSan CI leg.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "kernel/goal_cache.h"
#include "kernel/serialize.h"
#include "kernel/terms.h"
#include "kernel/thm.h"
#include "service/cache_file.h"
#include "service/verify_service.h"
#include "testlib/gen.h"

namespace k = eda::kernel;
namespace svc = eda::service;
using eda::testlib::TermGen;
using k::Term;
using k::Thm;
using k::Type;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// (jobs, share) service options — the old flat positional init, regrouped.
svc::ServiceOptions sopts(unsigned jobs, bool share = true) {
  svc::ServiceOptions opts;
  opts.jobs = jobs;
  opts.cache.share = share;
  return opts;
}

/// A small but non-trivial cache pair to persist: refl/assume-derived
/// theorems over generated goals, plus a few verdicts.
void fill_caches(svc::TheoremCache& thms, svc::VerdictCache& verdicts,
                 std::uint64_t seed, int entries) {
  TermGen gen(seed);
  for (int i = 0; i < entries; ++i) {
    Term goal = gen.random_goal(4);
    thms.emplace(goal, Thm::refl(goal));
    eda::verify::VerifyResult v;
    v.completed = true;
    v.equivalent = (i % 3) != 0;
    v.iterations = i;
    v.seconds = 0.25 * i;
    v.peak = static_cast<std::size_t>(100 + i);
    verdicts.emplace(k::mk_eq(goal, goal), v);
  }
}

}  // namespace

// --- Term/type round trips -------------------------------------------------

TEST(Serialize, RoundTripPreservesInternedIdentity) {
  // The headline property: for ~1000 seeded random terms, deserialization
  // re-interns to the IDENTICAL node — same pointer, same alpha hash, same
  // cached free-variable set — because reconstruction runs through the
  // hash-consing constructors.
  TermGen gen(0xeda5eed);
  std::vector<Term> originals;
  k::Encoder enc;
  for (int i = 0; i < 1000; ++i) {
    Term t = gen.random_goal(2 + i % 7);
    originals.push_back(t);
    enc.term(t);
  }
  std::string bytes = enc.finish();
  k::Decoder dec(bytes);
  for (const Term& orig : originals) {
    Term back = dec.term();
    EXPECT_EQ(back.node_id(), orig.node_id());
    EXPECT_TRUE(back.identical(orig));
    EXPECT_EQ(back.hash(), orig.hash());
    EXPECT_EQ(&k::free_vars_set(back), &k::free_vars_set(orig));
  }
  EXPECT_TRUE(dec.at_end());
}

TEST(Serialize, RoundTripTypes) {
  TermGen gen(42);
  k::Encoder enc;
  std::vector<Type> originals;
  for (int i = 0; i < 200; ++i) {
    Type ty = gen.random_type(1 + i % 5);
    originals.push_back(ty);
    enc.type(ty);
  }
  std::string bytes = enc.finish();
  k::Decoder dec(bytes);
  for (const Type& orig : originals) {
    Type back = dec.type();
    EXPECT_EQ(back.node_id(), orig.node_id());
    EXPECT_EQ(back.hash(), orig.hash());
  }
  EXPECT_TRUE(dec.at_end());
}

TEST(Serialize, SharedDagSerializesOncePerNode) {
  // A 2^200-leaf doubling tower is a 201-node DAG: the encoding must stay
  // tiny (one record per node, fixed-width references), or serialization
  // would be the one kernel operation that pays tree cost.
  Term tower = eda::testlib::eq_tower(200);
  k::Encoder enc;
  enc.term(tower);
  std::string bytes = enc.finish();
  EXPECT_LT(bytes.size(), 16u * 1024u);
  k::Decoder dec(bytes);
  EXPECT_EQ(dec.term().node_id(), tower.node_id());
}

TEST(Serialize, MixedPayloadScalars) {
  k::Encoder enc;
  enc.u8(7);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefULL);
  enc.f64(3.5);
  enc.str("hello \0 world");  // embedded NUL survives? (string literal cuts)
  enc.str(std::string("bin\0ary", 7));
  std::string bytes = enc.finish();
  k::Decoder dec(bytes);
  EXPECT_EQ(dec.u8(), 7u);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(dec.f64(), 3.5);
  EXPECT_EQ(dec.str(), "hello ");
  EXPECT_EQ(dec.str(), std::string("bin\0ary", 7));
  EXPECT_TRUE(dec.at_end());
}

// --- Theorems --------------------------------------------------------------

TEST(Serialize, ThmRoundTripPreservesEverything) {
  Term p = Term::var("p", k::bool_ty());
  Term q = Term::var("q", k::bool_ty());
  Thm pure = Thm::trans(Thm::assume(k::mk_eq(p, q)),
                        Thm::assume(k::mk_eq(q, p)));
  Thm tagged = k::Oracle::admit("SERIALIZE_TEST", k::mk_eq(p, p));

  k::Encoder enc;
  enc.thm(pure);
  enc.thm(tagged);
  std::string bytes = enc.finish();
  k::Decoder dec(bytes);

  Thm pure_back = dec.thm();
  EXPECT_TRUE(pure_back.concl().identical(pure.concl()));
  ASSERT_EQ(pure_back.hyps().size(), pure.hyps().size());
  for (std::size_t i = 0; i < pure.hyps().size(); ++i) {
    EXPECT_TRUE(pure_back.hyps()[i].identical(pure.hyps()[i]));
  }
  EXPECT_TRUE(pure_back.is_pure());

  Thm tagged_back = dec.thm();
  EXPECT_FALSE(tagged_back.is_pure());
  EXPECT_EQ(tagged_back.oracles().count("SERIALIZE_TEST"), 1u);
  EXPECT_TRUE(dec.at_end());
}

// --- GoalCache save/load ---------------------------------------------------

TEST(Serialize, AlphaEquivalentGoalsLoadToSameCacheKey) {
  // Two generators, same seed, different binder salts: pairwise
  // alpha-equivalent goals spelt differently.  An entry saved under one
  // spelling must be found under the other after a reload — the cache key
  // is the alpha class, and serialization must not weaken that.
  TermGen gen_u(0xa1fa, "u");
  TermGen gen_v(0xa1fa, "v");
  k::GoalCache<int> cache;
  std::vector<Term> spelt_u, spelt_v;
  int abs_pairs = 0;
  for (int i = 0; i < 300; ++i) {
    Term a = gen_u.random_goal(3 + i % 5);
    Term b = gen_v.random_goal(3 + i % 5);
    ASSERT_TRUE(a == b) << "salt variants must be alpha-equivalent at " << i;
    if (!a.identical(b)) ++abs_pairs;
    spelt_u.push_back(a);
    spelt_v.push_back(b);
    cache.emplace(a, i);
  }
  // The generator must actually exercise abstractions, or this test says
  // nothing about alpha classes.
  EXPECT_GT(abs_pairs, 20);

  k::Encoder enc;
  cache.save(enc, [](k::Encoder& e, int v) {
    e.u32(static_cast<std::uint32_t>(v));
  });
  std::string bytes = enc.finish();

  k::GoalCache<int> reloaded;
  k::Decoder dec(bytes);
  std::size_t admitted = reloaded.load(dec, [](k::Decoder& d) {
    return static_cast<int>(d.u32());
  });
  EXPECT_TRUE(dec.at_end());
  EXPECT_EQ(admitted, cache.stats().entries);
  for (int i = 0; i < 300; ++i) {
    auto got = reloaded.find(spelt_v[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(got.has_value()) << "goal " << i;
    // Alpha-equivalent later goals may have overwritten... no: emplace
    // keeps the first value, and find under either spelling must agree.
    EXPECT_EQ(*got,
              *cache.find(spelt_u[static_cast<std::size_t>(i)]));
  }
}

// --- PersistentCacheFile ---------------------------------------------------

TEST(CacheFile, EncodeDecodeRoundTrip) {
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  fill_caches(thms, verdicts, 7, 50);

  std::string bytes = svc::PersistentCacheFile::encode(thms, verdicts);
  svc::TheoremCache thms2;
  svc::VerdictCache verdicts2;
  svc::CacheLoadResult r =
      svc::PersistentCacheFile::decode(bytes, thms2, verdicts2);
  ASSERT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(r.theorems, thms.stats().entries);
  EXPECT_EQ(r.verdicts, verdicts.stats().entries);

  for (auto& [goal, thm] : thms.snapshot()) {
    auto got = thms2.find(goal);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->concl().identical(thm.concl()));
    EXPECT_EQ(got->is_pure(), thm.is_pure());
  }
  for (auto& [goal, v] : verdicts.snapshot()) {
    auto got = verdicts2.find(goal);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->completed, v.completed);
    EXPECT_EQ(got->equivalent, v.equivalent);
    EXPECT_EQ(got->iterations, v.iterations);
    EXPECT_DOUBLE_EQ(got->seconds, v.seconds);
    EXPECT_EQ(got->peak, v.peak);
  }
}

TEST(CacheFile, SaveLoadFileRoundTripAndOverwrite) {
  std::string path = temp_path("cache_roundtrip.bin");
  svc::PersistentCacheFile file(path);
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  fill_caches(thms, verdicts, 11, 20);
  file.save(thms, verdicts);

  svc::TheoremCache in_t;
  svc::VerdictCache in_v;
  svc::CacheLoadResult r = file.load(in_t, in_v);
  ASSERT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(r.theorems, thms.stats().entries);

  // Overwriting with a bigger snapshot replaces the file atomically.
  fill_caches(thms, verdicts, 13, 30);
  file.save(thms, verdicts);
  svc::TheoremCache in_t2;
  svc::VerdictCache in_v2;
  r = file.load(in_t2, in_v2);
  ASSERT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(r.theorems, thms.stats().entries);
  std::remove(path.c_str());
}

TEST(CacheFile, MissingFileIsDiagnosedColdStart) {
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  svc::CacheLoadResult r =
      svc::PersistentCacheFile(temp_path("never_written.bin"))
          .load(thms, verdicts);
  EXPECT_FALSE(r.loaded);
  EXPECT_NE(r.note.find("cold"), std::string::npos);
  EXPECT_EQ(thms.stats().entries, 0u);
  EXPECT_EQ(verdicts.stats().entries, 0u);
}

// --- Corruption: every failure is a clean cold start -----------------------

TEST(CacheFileCorruption, TruncationsNeverCrashOrAdmitEntries) {
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  fill_caches(thms, verdicts, 17, 15);
  std::string bytes = svc::PersistentCacheFile::encode(thms, verdicts);

  // Every prefix, stepping through the interesting small lengths densely
  // and the tail coarsely.
  for (std::size_t len = 0; len < bytes.size();
       len += (len < 64 ? 1 : 97)) {
    svc::TheoremCache t;
    svc::VerdictCache v;
    svc::CacheLoadResult r = svc::PersistentCacheFile::decode(
        std::string_view(bytes).substr(0, len), t, v);
    EXPECT_FALSE(r.loaded) << "prefix " << len;
    EXPECT_FALSE(r.note.empty());
    EXPECT_NE(r.note.find("cold"), std::string::npos);
    EXPECT_EQ(t.stats().entries, 0u) << "prefix " << len;
    EXPECT_EQ(v.stats().entries, 0u) << "prefix " << len;
  }
}

TEST(CacheFileCorruption, BitFlipsNeverCrashOrAdmitEntries) {
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  fill_caches(thms, verdicts, 19, 10);
  std::string bytes = svc::PersistentCacheFile::encode(thms, verdicts);

  // Flip one bit in every byte position (stride keeps runtime sane on the
  // larger payload, but covers header, both tables and payload).
  for (std::size_t pos = 0; pos < bytes.size();
       pos += (pos < 32 ? 1 : 13)) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 << (pos % 8)));
    svc::TheoremCache t;
    svc::VerdictCache v;
    svc::CacheLoadResult r =
        svc::PersistentCacheFile::decode(mutated, t, v);
    EXPECT_FALSE(r.loaded) << "flip at " << pos;
    EXPECT_EQ(t.stats().entries, 0u) << "flip at " << pos;
    EXPECT_EQ(v.stats().entries, 0u) << "flip at " << pos;
  }
}

TEST(CacheFileCorruption, VersionSkewIsDiagnosedNotMigrated) {
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  fill_caches(thms, verdicts, 23, 5);
  std::string bytes = svc::PersistentCacheFile::encode(thms, verdicts);
  ASSERT_GT(bytes.size(), 8u);
  bytes[4] = static_cast<char>(bytes[4] + 1);  // header version field

  svc::TheoremCache t;
  svc::VerdictCache v;
  svc::CacheLoadResult r = svc::PersistentCacheFile::decode(bytes, t, v);
  EXPECT_FALSE(r.loaded);
  EXPECT_NE(r.note.find("version"), std::string::npos);
  EXPECT_EQ(t.stats().entries, 0u);
}

TEST(CacheFileCorruption, ForeignFileIsRejectedByMagic) {
  svc::TheoremCache t;
  svc::VerdictCache v;
  svc::CacheLoadResult r = svc::PersistentCacheFile::decode(
      "#! not a cache file at all, but longer than a header\n", t, v);
  EXPECT_FALSE(r.loaded);
  EXPECT_NE(r.note.find("magic"), std::string::npos);
}

TEST(CacheFileCorruption, CorruptFileOnDiskStartsServiceCold) {
  // End to end through the service API: a clobbered cache file must leave
  // the service running (cold), not throw out of construction/startup.
  std::string path = temp_path("clobbered.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "EDAC garbage that is long enough to look like a header";
  }
  svc::VerifyService service(sopts(1));
  svc::CacheLoadResult r = service.load_cache(path);
  EXPECT_FALSE(r.loaded);
  EXPECT_NE(r.note.find("cold"), std::string::npos);
  std::remove(path.c_str());
}

// --- Concurrency: snapshot while draining (TSan leg) -----------------------

TEST(CacheFileConcurrency, SaveWhileDrainingProducesLoadableFiles) {
  // One thread runs a batch of jobs (publishing into the shared caches)
  // while another repeatedly snapshots the service to the same path.
  // Every intermediate file is complete (atomic rename) and the final one
  // reflects the drained service.
  std::string path = temp_path("concurrent_save.bin");
  svc::VerifyService service(sopts(2));
  std::vector<svc::JobSpec> specs;
  for (int n = 2; n <= 6; ++n) {
    svc::JobSpec spec;
    spec.circuit = "fig2:" + std::to_string(n);
    spec.method = svc::Method::Hash;
    spec.timeout_sec = 30.0;
    specs.push_back(spec);
  }

  std::thread saver([&] {
    for (int i = 0; i < 25; ++i) service.save_cache(path);
  });
  std::vector<svc::JobResult> results = service.run_batch(specs);
  saver.join();
  for (const svc::JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.error;
  }

  // The racing snapshots left SOME complete file; reload it.
  svc::TheoremCache t;
  svc::VerdictCache v;
  svc::CacheLoadResult mid =
      svc::PersistentCacheFile(path).load(t, v);
  EXPECT_TRUE(mid.loaded) << mid.note;

  // A post-drain save must carry every proved theorem: a fresh service
  // warm-started from it re-runs the batch without a single theorem miss.
  service.save_cache(path);
  svc::VerifyService warm(sopts(2));
  svc::CacheLoadResult wl = warm.load_cache(path);
  ASSERT_TRUE(wl.loaded) << wl.note;
  EXPECT_EQ(wl.theorems, specs.size());
  warm.run_batch(specs);
  EXPECT_EQ(warm.stats().theorems.misses, 0u);
  EXPECT_EQ(warm.stats().theorems.hits, specs.size());
  std::remove(path.c_str());
}
