// Tests for the post-synthesis verification baselines: all four engines
// must agree with each other and with bounded simulation.

#include <gtest/gtest.h>

#include "bench_gen/fig2.h"
#include "bench_gen/iwls.h"
#include "circuit/bitblast.h"
#include "hash/retime_step.h"
#include "verify/eijk.h"
#include "verify/sis_fsm.h"
#include "verify/smv_mc.h"
#include "verify/symbolic.h"

namespace c = eda::circuit;
namespace h = eda::hash;
namespace v = eda::verify;

namespace {

struct Pair {
  c::GateNetlist a, b;
};

Pair retimed_pair(int n_bits) {
  auto fig2 = eda::bench_gen::make_fig2(n_bits);
  h::FormalRetimeResult res = h::formal_retime(fig2.rtl, fig2.good_cut);
  return {c::bit_blast(fig2.rtl), c::bit_blast(res.retimed)};
}

Pair broken_pair(int n_bits) {
  auto fig2 = eda::bench_gen::make_fig2(n_bits);
  auto broken = eda::bench_gen::make_fig2(n_bits);
  // Sabotage: change the register's initial value.
  c::Rtl bad;
  auto a = bad.add_input("a", n_bits);
  auto b2 = bad.add_input("b", n_bits);
  auto reg = bad.add_reg("R", n_bits, 2);
  auto one = bad.add_const(n_bits, 1);
  auto zero = bad.add_const(n_bits, 0);
  auto inc = bad.add_op(c::Op::Add, {reg, one});
  auto cmp = bad.add_op(c::Op::Eq, {a, b2});
  auto y = bad.add_op(c::Op::Mux, {cmp, zero, inc});
  bad.add_output("y", y);
  bad.set_reg_next(reg, y);
  (void)broken;
  return {c::bit_blast(fig2.rtl), c::bit_blast(bad)};
}

}  // namespace

TEST(Combinational, EquivalentAdders) {
  // Two structurally different implementations of the same function:
  // a+b and  b+a  at 6 bits.
  c::Rtl r1;
  auto a1 = r1.add_input("a", 6);
  auto b1 = r1.add_input("b", 6);
  auto s1 = r1.add_op(c::Op::Add, {a1, b1});
  // A combinational netlist still needs the Rtl to have a reg for compile,
  // but bit_blast accepts pure combinational circuits... add none here.
  r1.add_output("s", s1);
  c::Rtl r2;
  auto a2 = r2.add_input("a", 6);
  auto b2 = r2.add_input("b", 6);
  auto s2 = r2.add_op(c::Op::Add, {b2, a2});
  r2.add_output("s", s2);
  EXPECT_TRUE(v::combinational_equivalent(c::bit_blast(r1),
                                          c::bit_blast(r2)));
  // a+b vs a-b differ.
  c::Rtl r3;
  auto a3 = r3.add_input("a", 6);
  auto b3 = r3.add_input("b", 6);
  r3.add_output("s", r3.add_op(c::Op::Sub, {a3, b3}));
  EXPECT_FALSE(v::combinational_equivalent(c::bit_blast(r1),
                                           c::bit_blast(r3)));
}

TEST(Smv, RetimedPairEquivalent) {
  Pair p = retimed_pair(3);
  v::VerifyResult res = v::smv_check(p.a, p.b);
  ASSERT_TRUE(res.completed);
  EXPECT_TRUE(res.equivalent);
  EXPECT_GT(res.iterations, 0);
}

TEST(Smv, BrokenPairCaught) {
  Pair p = broken_pair(3);
  v::VerifyResult res = v::smv_check(p.a, p.b);
  ASSERT_TRUE(res.completed);
  EXPECT_FALSE(res.equivalent);
}

TEST(Sis, RetimedPairEquivalent) {
  Pair p = retimed_pair(3);
  v::VerifyResult res = v::sis_fsm_check(p.a, p.b);
  ASSERT_TRUE(res.completed);
  EXPECT_TRUE(res.equivalent);
}

TEST(Sis, BrokenPairCaught) {
  Pair p = broken_pair(3);
  v::VerifyResult res = v::sis_fsm_check(p.a, p.b);
  ASSERT_TRUE(res.completed);
  EXPECT_FALSE(res.equivalent);
}

TEST(Sis, TimesOutOnWideInputs) {
  // 2 x 14 input bits = 2^28 input combinations per state: must bail out.
  Pair p = retimed_pair(14);
  v::VerifyOptions opts;
  opts.timeout_sec = 0.5;
  v::VerifyResult res = v::sis_fsm_check(p.a, p.b, opts);
  EXPECT_FALSE(res.completed);
}

TEST(Eijk, RetimedPairEquivalent) {
  Pair p = retimed_pair(3);
  v::VerifyResult res = v::eijk_check(p.a, p.b);
  ASSERT_TRUE(res.completed);
  EXPECT_TRUE(res.equivalent);
}

TEST(Eijk, PlusVariantAgrees) {
  Pair p = retimed_pair(4);
  v::VerifyResult plain = v::eijk_check(p.a, p.b, {}, false);
  v::VerifyResult fd = v::eijk_check(p.a, p.b, {}, true);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(fd.completed);
  EXPECT_TRUE(plain.equivalent);
  EXPECT_TRUE(fd.equivalent);
}

TEST(Eijk, BrokenPairCaughtByBoth) {
  Pair p = broken_pair(3);
  v::VerifyResult plain = v::eijk_check(p.a, p.b, {}, false);
  v::VerifyResult fd = v::eijk_check(p.a, p.b, {}, true);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(fd.completed);
  EXPECT_FALSE(plain.equivalent);
  EXPECT_FALSE(fd.equivalent);
}

TEST(AllEngines, AgreeOnIwlsRetimedPairs) {
  for (const auto& bench : eda::bench_gen::iwls_benchmarks()) {
    // Keep it to the small ones for test time.
    c::GateNetlist ga = c::bit_blast(bench.rtl);
    if (ga.ff_count() > 10 || ga.inputs().size() > 10) continue;
    SCOPED_TRACE(bench.name);
    h::FormalRetimeResult res = h::formal_retime(bench.rtl, bench.cut);
    c::GateNetlist gb = c::bit_blast(res.retimed);
    v::VerifyOptions opts;
    opts.timeout_sec = 20.0;
    v::VerifyResult smv = v::smv_check(ga, gb, opts);
    v::VerifyResult sis = v::sis_fsm_check(ga, gb, opts);
    v::VerifyResult e1 = v::eijk_check(ga, gb, opts, false);
    v::VerifyResult e2 = v::eijk_check(ga, gb, opts, true);
    if (smv.completed) {
      EXPECT_TRUE(smv.equivalent);
    }
    if (sis.completed) {
      EXPECT_TRUE(sis.equivalent);
    }
    if (e1.completed) {
      EXPECT_TRUE(e1.equivalent);
    }
    if (e2.completed) {
      EXPECT_TRUE(e2.equivalent);
    }
    // At least the symbolic engines should finish on these sizes.
    EXPECT_TRUE(smv.completed || e1.completed);
  }
}

TEST(AllEngines, MutationsAreCaught) {
  // Mutate the retimed fig2 netlist in several ways; every completing
  // engine must reject.
  auto fig2 = eda::bench_gen::make_fig2(3);
  h::FormalRetimeResult ok = h::formal_retime(fig2.rtl, fig2.good_cut);
  c::GateNetlist ga = c::bit_blast(fig2.rtl);
  for (int mutation = 0; mutation < 3; ++mutation) {
    // Mutations on the retimed netlist: flip init, swap mux arms, change op.
    c::Rtl rebuilt;
    auto a = rebuilt.add_input("a", 3);
    auto b = rebuilt.add_input("b", 3);
    auto reg = rebuilt.add_reg("R", 3, mutation == 0 ? 0u : 1u);
    auto one = rebuilt.add_const(3, 1);
    auto zero = rebuilt.add_const(3, 0);
    auto cmp = rebuilt.add_op(c::Op::Eq, {a, b});
    auto y = mutation == 1
                 ? rebuilt.add_op(c::Op::Mux, {cmp, reg, zero})
                 : rebuilt.add_op(c::Op::Mux, {cmp, zero, reg});
    auto nxt = mutation == 2 ? rebuilt.add_op(c::Op::Sub, {y, one})
                             : rebuilt.add_op(c::Op::Add, {y, one});
    rebuilt.set_reg_next(reg, nxt);
    rebuilt.add_output("y", y);
    c::GateNetlist gb = c::bit_blast(rebuilt);
    SCOPED_TRACE(mutation);
    v::VerifyResult smv = v::smv_check(ga, gb);
    ASSERT_TRUE(smv.completed);
    EXPECT_FALSE(smv.equivalent);
    v::VerifyResult sis = v::sis_fsm_check(ga, gb);
    ASSERT_TRUE(sis.completed);
    EXPECT_FALSE(sis.equivalent);
  }
}
