// Tests for the BLIF writer/parser and the structural Verilog writer:
// round trips on bit-blasted circuits, hand-written SIS-style covers,
// and the malformed-input failure modes.

#include <gtest/gtest.h>

#include <cctype>

#include "bench_gen/fig2.h"
#include "circuit/bitblast.h"
#include "io/blif.h"
#include "testlib/gen.h"

namespace c = eda::circuit;
namespace io = eda::io;
using c::GateNetlist;
using c::GateOp;
using c::LitId;

namespace {

/// Gate-level equivalence by co-simulation on random stimuli.
bool gates_equivalent(const GateNetlist& a, const GateNetlist& b,
                      int cycles, std::uint32_t seed) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    return false;
  }
  c::GateSimulator sa(a), sb(b);
  sa.reset();
  sb.reset();
  std::uint32_t x = seed;
  for (int k = 0; k < cycles; ++k) {
    std::vector<bool> in;
    for (std::size_t j = 0; j < a.inputs().size(); ++j) {
      x = x * 1664525u + 1013904223u;
      in.push_back((x >> 16) & 1);
    }
    if (sa.step(in) != sb.step(in)) return false;
  }
  return true;
}

}  // namespace

TEST(Blif, RoundTripFig2) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  GateNetlist net = c::bit_blast(fig2.rtl);
  std::string text = io::write_blif(net, "fig2_4");
  GateNetlist back = io::parse_blif_string(text);
  EXPECT_EQ(back.ff_count(), net.ff_count());
  EXPECT_EQ(back.inputs().size(), net.inputs().size());
  EXPECT_TRUE(gates_equivalent(net, back, 300, 5));
}

TEST(Blif, RoundTripPreservesLatchInitValues) {
  GateNetlist net;
  LitId i = net.add_input("i");
  LitId d0 = net.add_dff("d0", true);
  LitId d1 = net.add_dff("d1", false);
  net.set_dff_next(d0, net.add_gate(GateOp::Xor, d0, i));
  net.set_dff_next(d1, d0);
  net.add_output("y", net.add_gate(GateOp::And, d0, d1));
  std::string text = io::write_blif(net, "t");
  GateNetlist back = io::parse_blif_string(text);
  ASSERT_EQ(back.dffs().size(), 2u);
  EXPECT_TRUE(back.node(back.dffs()[0]).init);
  EXPECT_FALSE(back.node(back.dffs()[1]).init);
  EXPECT_TRUE(gates_equivalent(net, back, 200, 9));
}

TEST(Blif, ParsesMultiInputSumOfProducts) {
  // A 3-input majority gate as one SIS-style cover.
  const char* text =
      ".model maj\n"
      ".inputs a b c\n"
      ".outputs y\n"
      ".names a b c y\n"
      "11- 1\n"
      "1-1 1\n"
      "-11 1\n"
      ".end\n";
  GateNetlist net = io::parse_blif_string(text);
  c::GateSimulator sim(net);
  for (int v = 0; v < 8; ++v) {
    bool a = v & 4, b = v & 2, cc = v & 1;
    bool want = (a && b) || (a && cc) || (b && cc);
    auto out = sim.eval({a, b, cc}, {}).first;
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], want) << "v=" << v;
  }
}

TEST(Blif, ParsesOffSetCover) {
  // Output defined by its 0-set: y = NOT(a AND b).
  const char* text =
      ".model nand\n.inputs a b\n.outputs y\n"
      ".names a b y\n11 0\n.end\n";
  GateNetlist net = io::parse_blif_string(text);
  c::GateSimulator sim(net);
  for (int v = 0; v < 4; ++v) {
    bool a = v & 2, b = v & 1;
    EXPECT_EQ(sim.eval({a, b}, {}).first[0], !(a && b));
  }
}

TEST(Blif, ParsesConstantCovers) {
  const char* text =
      ".model k\n.inputs a\n.outputs one zero\n"
      ".names one\n1\n"
      ".names zero\n"
      ".end\n";
  GateNetlist net = io::parse_blif_string(text);
  c::GateSimulator sim(net);
  auto out = sim.eval({false}, {}).first;
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(Blif, RejectsMalformedInputs) {
  EXPECT_THROW(io::parse_blif_string(".model x\n.inputs a\n.outputs y\n.end\n"),
               io::IoError);  // y undriven
  EXPECT_THROW(io::parse_blif_string(
                   ".model x\n.inputs a\n.outputs y\n"
                   ".names a y\n1 1\n.names a y\n0 1\n.end\n"),
               io::IoError);  // y driven twice
  EXPECT_THROW(io::parse_blif_string(
                   ".model x\n.inputs a\n.outputs y\n"
                   ".names y y2\n1 1\n.names y2 y\n1 1\n.end\n"),
               io::IoError);  // combinational cycle
  EXPECT_THROW(io::parse_blif_string(
                   ".model x\n.inputs a\n.outputs y\n"
                   ".names a y\n1 1\n0 0\n.end\n"),
               io::IoError);  // mixed on/off set
  EXPECT_THROW(io::parse_blif_string(
                   ".model x\n.inputs a\n.outputs y\n"
                   ".names a y\n11 1\n.end\n"),
               io::IoError);  // cube width mismatch
}

TEST(BlifStructuralHash, StableAcrossParsesAndRenames) {
  // The verdict-cache key property: re-parsing the same BLIF — or a
  // wire-renamed re-export of it — hashes identically, because the digest
  // covers the graph and ignores every signal name.
  GateNetlist net = eda::testlib::random_netlist(0xb11f, 3, 24, 2);
  std::string text = io::write_blif(net, "m");
  GateNetlist p1 = io::parse_blif_string(text);
  GateNetlist p2 = io::parse_blif_string(text);
  EXPECT_EQ(io::structural_hash(p1), io::structural_hash(p2));

  // Rename every internal wire (nN -> wireN) and the ports; structure —
  // and therefore the hash — is untouched.
  std::string renamed = text;
  for (std::string::size_type pos = 0;
       (pos = renamed.find("n", pos)) != std::string::npos;) {
    if (pos + 1 < renamed.size() && std::isdigit(renamed[pos + 1]) &&
        (pos == 0 || std::isspace(renamed[pos - 1]))) {
      renamed.replace(pos, 1, "wire");
      pos += 4;
    } else {
      ++pos;
    }
  }
  GateNetlist pr = io::parse_blif_string(renamed);
  EXPECT_EQ(io::structural_hash(p1), io::structural_hash(pr));
}

TEST(BlifStructuralHash, StructuralEditsChangeTheDigest) {
  GateNetlist base = eda::testlib::random_netlist(1, 3, 20, 2);
  // Different seed -> different graph -> different digest.
  GateNetlist other = eda::testlib::random_netlist(2, 3, 20, 2);
  EXPECT_NE(io::structural_hash(base), io::structural_hash(other));

  // Single-gate edits: same shape, one differing op / init bit.
  auto tiny = [](GateOp op, bool init) {
    GateNetlist net;
    LitId a = net.add_input("a");
    LitId b = net.add_input("b");
    LitId d = net.add_dff("d", init);
    net.set_dff_next(d, net.add_gate(op, a, b));
    net.add_output("y", d);
    return net;
  };
  std::uint64_t h_and = io::structural_hash(tiny(GateOp::And, false));
  std::uint64_t h_or = io::structural_hash(tiny(GateOp::Or, false));
  std::uint64_t h_init = io::structural_hash(tiny(GateOp::And, true));
  EXPECT_NE(h_and, h_or);
  EXPECT_NE(h_and, h_init);
  // And the digest really is deterministic, not address-dependent.
  EXPECT_EQ(h_and, io::structural_hash(tiny(GateOp::And, false)));
}

TEST(ConeHash, StableUnderConstructionOrderAndRenaming) {
  // Two netlists with the SAME two cones but different gate interleavings
  // and different spellings: per-cone digests must match pairwise even
  // though the whole-netlist digests differ (node order is interface for
  // the whole net, not for a cone).
  GateNetlist n1;
  {
    LitId a = n1.add_input("a"), b = n1.add_input("b");
    LitId u = n1.add_gate(GateOp::And, a, b);
    LitId v = n1.add_gate(GateOp::Xor, a, b);
    n1.add_output("o1", u);
    n1.add_output("o2", v);
  }
  GateNetlist n2;
  {
    LitId a = n2.add_input("pa"), b = n2.add_input("pb");
    LitId v = n2.add_gate(GateOp::Xor, a, b);  // reversed gate order
    LitId u = n2.add_gate(GateOp::And, a, b);
    n2.add_output("q1", u);
    n2.add_output("q2", v);
  }
  std::vector<std::uint64_t> h1 = io::cone_hashes(n1);
  std::vector<std::uint64_t> h2 = io::cone_hashes(n2);
  ASSERT_EQ(h1.size(), 2u);
  ASSERT_EQ(h2.size(), 2u);
  EXPECT_EQ(h1[0], h2[0]);
  EXPECT_EQ(h1[1], h2[1]);
  EXPECT_NE(h1[0], h1[1]);  // And-cone and Xor-cone are different cones
  EXPECT_NE(io::structural_hash(n1), io::structural_hash(n2));
}

TEST(ConeHash, StableAcrossBlifRoundTrip) {
  // The first write/parse decomposes Xor covers into sum-of-products, so
  // in-memory digests legitimately move once.  What the incremental cache
  // keys rely on is stability WITHIN the parsed domain — every side of a
  // blif-pair job comes from a file — so a parsed netlist must be a
  // round-trip fixed point.
  GateNetlist net = eda::testlib::random_netlist_multi(0xc09e, 4, 40, 3, 4);
  GateNetlist once = io::parse_blif_string(io::write_blif(net, "m"));
  GateNetlist twice = io::parse_blif_string(io::write_blif(once, "m"));
  ASSERT_EQ(io::extract_cones(once).size(), io::extract_cones(net).size());
  EXPECT_EQ(io::cone_hashes(once), io::cone_hashes(twice));
}

TEST(ConeHash, SingleGateFunctionalChangeIsDistinct) {
  auto two_cone = [](GateOp op0) {
    GateNetlist net;
    LitId a = net.add_input("a"), b = net.add_input("b");
    net.add_output("o1", net.add_gate(op0, a, b));
    net.add_output("o2", net.add_gate(GateOp::Xor, a, b));
    return net;
  };
  std::vector<std::uint64_t> h_and = io::cone_hashes(two_cone(GateOp::And));
  std::vector<std::uint64_t> h_or = io::cone_hashes(two_cone(GateOp::Or));
  EXPECT_NE(h_and[0], h_or[0]);  // the edited cone moved...
  EXPECT_EQ(h_and[1], h_or[1]);  // ...the untouched one did not
}

TEST(ConeHash, SharedLogicConesHashIndependently) {
  // Both outputs read the shared gate s; an edit beyond s in cone o2 must
  // leave cone o1's digest untouched (each cone is self-contained).
  GateNetlist net;
  LitId a = net.add_input("a"), b = net.add_input("b");
  LitId s = net.add_gate(GateOp::And, a, b);
  net.add_output("o1", net.add_gate(GateOp::Xor, s, a));
  net.add_output("o2", net.add_gate(GateOp::Or, s, b));
  GateNetlist edited =
      eda::testlib::mutate_cone(net, 1, eda::testlib::ConeEdit::Equivalent);
  std::vector<std::uint64_t> h0 = io::cone_hashes(net);
  std::vector<std::uint64_t> h1 = io::cone_hashes(edited);
  EXPECT_EQ(h0[0], h1[0]);
  EXPECT_NE(h0[1], h1[1]);
}

TEST(ConeHash, DffConesIncludeNextStateLogic) {
  // A cone reaches THROUGH flip-flops: editing a flop's next-state
  // function changes the digest of every cone reading that flop.
  auto machine = [](GateOp next_op) {
    GateNetlist net;
    LitId a = net.add_input("a");
    LitId d = net.add_dff("d", false);
    net.set_dff_next(d, net.add_gate(next_op, d, a));
    net.add_output("y", d);
    return net;
  };
  EXPECT_NE(io::cone_hashes(machine(GateOp::And))[0],
            io::cone_hashes(machine(GateOp::Or))[0]);
}

TEST(Verilog, EmitsStructuralModule) {
  auto fig2 = eda::bench_gen::make_fig2(2);
  GateNetlist net = c::bit_blast(fig2.rtl);
  std::string v = io::write_verilog(net, "fig2_2");
  EXPECT_NE(v.find("module fig2_2"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // One reg declaration per flip-flop.
  std::size_t regs = 0, pos = 0;
  while ((pos = v.find("\n  reg ", pos)) != std::string::npos) {
    ++regs;
    ++pos;
  }
  EXPECT_EQ(regs, static_cast<std::size_t>(net.ff_count()));
}
