// Tests for the derived logic layer: boolean connectives, derived rules,
// conversions, matching and rewriting.

#include <gtest/gtest.h>

#include "kernel/printer.h"
#include "logic/bool_thms.h"
#include "logic/conv.h"
#include "logic/match.h"
#include "logic/rewrite.h"

namespace k = eda::kernel;
namespace l = eda::logic;
using k::Term;
using k::Thm;

namespace {

Term bv(const std::string& n) { return Term::var(n, k::bool_ty()); }

struct BoolInit {
  BoolInit() { l::init_bool(); }
};
const BoolInit kInit;

}  // namespace

TEST(Bool, Truth) {
  Thm t = l::truth();
  EXPECT_TRUE(t.hyps().empty());
  EXPECT_EQ(t.concl(), l::truth_tm());
  EXPECT_TRUE(t.is_pure());
}

TEST(Bool, EqtIntroElimRoundTrip) {
  Term p = bv("p");
  Thm asm_p = Thm::assume(p);
  Thm eq = l::eqt_intro(asm_p);
  EXPECT_EQ(eq.concl(), k::mk_eq(p, l::truth_tm()));
  Thm back = l::eqt_elim(eq);
  EXPECT_EQ(back.concl(), p);
}

TEST(Bool, Sym) {
  Term x = bv("x"), y = bv("y");
  Thm th = l::sym(Thm::assume(k::mk_eq(x, y)));
  EXPECT_EQ(th.concl(), k::mk_eq(y, x));
}

TEST(Bool, ConjAndProjections) {
  Term p = bv("p"), q = bv("q");
  Thm pq = l::conj(Thm::assume(p), Thm::assume(q));
  EXPECT_EQ(pq.concl(), l::mk_conj(p, q));
  Thm p2 = l::conjunct1(Thm::assume(l::mk_conj(p, q)));
  EXPECT_EQ(p2.concl(), p);
  Thm q2 = l::conjunct2(Thm::assume(l::mk_conj(p, q)));
  EXPECT_EQ(q2.concl(), q);
}

TEST(Bool, MpDisch) {
  Term p = bv("p"), q = bv("q");
  // {p ==> q, p} |- q
  Thm th = l::mp(Thm::assume(l::mk_imp(p, q)), Thm::assume(p));
  EXPECT_EQ(th.concl(), q);
  EXPECT_EQ(th.hyps().size(), 2u);
  // disch undoes assume:  |- p ==> p
  Thm refl_imp = l::disch(p, Thm::assume(p));
  EXPECT_TRUE(refl_imp.hyps().empty());
  EXPECT_EQ(refl_imp.concl(), l::mk_imp(p, p));
  // undisch round-trips.
  Thm und = l::undisch(refl_imp);
  EXPECT_EQ(und.concl(), p);
  EXPECT_EQ(und.hyps().size(), 1u);
}

TEST(Bool, GenSpecRoundTrip) {
  // gen binds a variable free in the conclusion (but not in any
  // hypothesis); spec at the same variable restores the theorem.
  Term x = Term::var("x", k::alpha_ty());
  Thm th = Thm::refl(x);  // |- x = x, no hypotheses
  Thm all = l::gen(x, th);
  EXPECT_TRUE(l::is_forall(all.concl()));
  Thm back = l::spec(x, all);
  EXPECT_EQ(back.concl(), th.concl());
}

TEST(Bool, GenRejectsFreeHypVar) {
  Term x = Term::var("x", k::alpha_ty());
  Term P = Term::var("P", k::fun_ty(k::alpha_ty(), k::bool_ty()));
  Term px = Term::comb(P, x);
  EXPECT_THROW(l::gen(x, Thm::assume(px)), k::KernelError);
}

TEST(Bool, GenThenSpec) {
  Term p = bv("p");
  Term x = Term::var("x", k::alpha_ty());
  // |- p ==> p, generalize over x (vacuous), then specialize.
  Thm imp = l::disch(p, Thm::assume(p));
  Thm all = l::gen(x, imp);
  EXPECT_TRUE(l::is_forall(all.concl()));
  Thm back = l::spec(Term::var("y", k::alpha_ty()), all);
  EXPECT_EQ(back.concl(), imp.concl());
}

TEST(Bool, SpecInstantiates) {
  // !x. x = x  |->  c = c
  Term x = Term::var("x", k::alpha_ty());
  Thm refl_all = l::gen(x, Thm::refl(x));
  Term c = Term::var("c", k::bool_ty());
  Thm inst = l::spec(c, Thm::inst_type({{"'a", k::bool_ty()}}, refl_all));
  EXPECT_EQ(inst.concl(), k::mk_eq(c, c));
}

TEST(Bool, SpecAll) {
  Term x = Term::var("x", k::alpha_ty());
  Term y = Term::var("y", k::alpha_ty());
  Thm th = l::gen_list({x, y}, Thm::refl(k::mk_eq(x, y)));
  Thm stripped = l::spec_all(th);
  EXPECT_FALSE(l::is_forall(stripped.concl()));
  EXPECT_TRUE(k::is_eq(stripped.concl()));
}

TEST(Bool, ContrFromFalse) {
  Term p = bv("p");
  Thm th = l::contr(p, Thm::assume(l::falsity_tm()));
  EXPECT_EQ(th.concl(), p);
}

TEST(Bool, NotIntroElim) {
  Term p = bv("p");
  Thm imp = l::disch(p, Thm::assume(l::falsity_tm()));
  // imp : {F} |- p ==> F
  Thm np = l::not_intro(imp);
  EXPECT_EQ(np.concl(), l::mk_neg(p));
  Thm back = l::not_elim(np);
  EXPECT_EQ(back.concl(), l::mk_imp(p, l::falsity_tm()));
}

TEST(Bool, Disjunction) {
  Term p = bv("p"), q = bv("q");
  Thm d1 = l::disj1(Thm::assume(p), q);
  EXPECT_EQ(d1.concl(), l::mk_disj(p, q));
  Thm d2 = l::disj2(p, Thm::assume(q));
  EXPECT_EQ(d2.concl(), l::mk_disj(p, q));
  // Case split: from p \/ q, p |- p \/ q, q |- p \/ q.
  Thm cases = l::disj_cases(Thm::assume(l::mk_disj(p, q)),
                            l::disj1(Thm::assume(p), q),
                            l::disj2(p, Thm::assume(q)));
  EXPECT_EQ(cases.concl(), l::mk_disj(p, q));
  ASSERT_EQ(cases.hyps().size(), 1u);
  EXPECT_EQ(cases.hyps()[0], l::mk_disj(p, q));
}

TEST(Bool, ExistsIntroChoose) {
  Term x = Term::var("x", k::bool_ty());
  // ?x. x = x, witness T.
  Term ex = l::mk_exists(x, k::mk_eq(x, x));
  Thm wit = Thm::refl(l::truth_tm());
  Thm exth = l::exists_intro(ex, l::truth_tm(), wit);
  EXPECT_EQ(exth.concl(), ex);
  EXPECT_TRUE(exth.hyps().empty());
  // choose: from ?x. x = x conclude T (trivially).
  Term v = Term::var("v", k::bool_ty());
  Thm target = l::truth();
  Thm out = l::choose(v, exth, target);
  EXPECT_EQ(out.concl(), l::truth_tm());
}

TEST(Conv, BetaConv) {
  Term x = bv("x");
  Term lam = Term::abs(x, k::mk_eq(x, x));
  Term redex = Term::comb(lam, l::truth_tm());
  Thm th = l::beta_conv(redex);
  EXPECT_EQ(k::eq_rhs(th.concl()),
            k::mk_eq(l::truth_tm(), l::truth_tm()));
  EXPECT_THROW(l::beta_conv(x), k::KernelError);
}

TEST(Conv, BetaNormNested) {
  // (\f. f T) (\y. y)  -->  T
  Term y = bv("y");
  Term f = Term::var("f", k::fun_ty(k::bool_ty(), k::bool_ty()));
  Term outer = Term::abs(f, Term::comb(f, l::truth_tm()));
  Term t = Term::comb(outer, Term::abs(y, y));
  Thm th = l::beta_norm_conv(t);
  EXPECT_EQ(k::eq_rhs(th.concl()), l::truth_tm());
}

TEST(Conv, RandRatorAbs) {
  Term x = bv("x");
  Term fx = Term::comb(Term::var("f", k::fun_ty(k::bool_ty(), k::bool_ty())),
                       Term::comb(Term::abs(x, x), l::truth_tm()));
  Thm th = l::rand_conv(l::beta_conv)(fx);
  EXPECT_EQ(k::eq_lhs(th.concl()), fx);
  EXPECT_TRUE(k::eq_rhs(th.concl()).rand() == l::truth_tm());
}

TEST(Conv, CombinatorsRepeatTry) {
  Term x = bv("x");
  // ((\x. x) ((\x. x) T)) — repeat beta at top reduces twice.
  Term idb = Term::abs(x, x);
  Term t = Term::comb(idb, Term::comb(idb, l::truth_tm()));
  Thm th = l::top_depth_conv(l::beta_conv)(t);
  EXPECT_EQ(k::eq_rhs(th.concl()), l::truth_tm());
  // tryc returns refl on failure.
  Thm r = l::tryc(l::beta_conv)(x);
  EXPECT_EQ(r.concl(), k::mk_eq(x, x));
}

TEST(Match, VariablePattern) {
  Term x = Term::var("x", k::alpha_ty());
  Term t = k::mk_eq(bv("p"), bv("q"));
  auto m = l::term_match(x, t);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->types.at("'a"), k::bool_ty());
}

TEST(Match, StructuralMismatch) {
  Term pat = l::mk_conj(bv("p"), bv("q"));
  Term t = l::mk_disj(bv("a"), bv("b"));
  EXPECT_FALSE(l::term_match(pat, t).has_value());
}

TEST(Match, ConsistencyRequired) {
  // pattern p /\ p requires both sides equal.
  Term p = bv("p");
  Term pat = l::mk_conj(p, p);
  EXPECT_TRUE(l::term_match(pat, l::mk_conj(bv("a"), bv("a"))).has_value());
  EXPECT_FALSE(l::term_match(pat, l::mk_conj(bv("a"), bv("b"))).has_value());
}

TEST(Match, NoScopeExtrusion) {
  // pattern (\x. y) cannot match (\x. x): y would have to be the bound x.
  Term x = Term::var("x", k::bool_ty());
  Term y = Term::var("y", k::bool_ty());
  Term pat = Term::abs(x, y);
  Term t = Term::abs(x, x);
  EXPECT_FALSE(l::term_match(pat, t).has_value());
  // But it can match (\x. p) for a free p.
  EXPECT_TRUE(l::term_match(pat, Term::abs(x, bv("p"))).has_value());
}

TEST(Rewrite, RewrConvBasic) {
  // Rule: |- !x. (x /\ x) = x, proved by DEDUCT_ANTISYM on the two
  // entailments {x /\ x} |- x and {x} |- x /\ x; the rule equates the
  // conclusions *in argument order*, so the conjunction side goes first
  // to orient the rewrite towards the smaller term.
  Term x = bv("x");
  Thm to = l::conjunct1(Thm::assume(l::mk_conj(x, x)));
  Thm from = l::conj(Thm::assume(x), Thm::assume(x));
  Thm rule = l::gen(x, Thm::deduct_antisym(from, to));
  Term target = l::mk_conj(bv("p"), bv("p"));
  Thm applied = l::rewr_conv(rule)(target);
  EXPECT_EQ(k::eq_lhs(applied.concl()), target);
  EXPECT_EQ(k::eq_rhs(applied.concl()), bv("p"));
}

TEST(Rewrite, RewriteConvDeep) {
  Term x = bv("x");
  Thm to = l::conjunct1(Thm::assume(l::mk_conj(x, x)));
  Thm from = l::conj(Thm::assume(x), Thm::assume(x));
  // DEDUCT_ANTISYM equates the conclusions in argument order: `from`
  // first orients the rule as (x /\ x) = x; the reverse orientation
  // (x = x /\ x) has a bare variable on the left and diverges.
  Thm rule = l::gen(x, Thm::deduct_antisym(from, to));
  // ((p /\ p) /\ (p /\ p))  -->  p
  Term p = bv("p");
  Term t = l::mk_conj(l::mk_conj(p, p), l::mk_conj(p, p));
  Thm th = l::rewrite_conv({rule})(t);
  EXPECT_EQ(k::eq_rhs(th.concl()), p);
}

TEST(Rewrite, CondClauses) {
  auto& sig = k::Signature::instance();
  Thm cond_t = sig.theorem("COND_T");
  Term a = Term::var("a", k::bool_ty());
  Term b2 = Term::var("b", k::bool_ty());
  Term t = l::mk_cond(l::truth_tm(), a, b2);
  Thm th = l::rewr_conv(cond_t)(t);
  EXPECT_EQ(k::eq_rhs(th.concl()), a);
  Thm cond_f = sig.theorem("COND_F");
  Term t2 = l::mk_cond(l::falsity_tm(), a, b2);
  Thm th2 = l::rewr_conv(cond_f)(t2);
  EXPECT_EQ(k::eq_rhs(th2.concl()), b2);
}

TEST(Rewrite, ConvRule) {
  // From |- T and T = T rewrite... use conv_rule with all_conv: identity.
  Thm t = l::truth();
  Thm same = l::conv_rule(l::all_conv, t);
  EXPECT_EQ(same.concl(), t.concl());
}
