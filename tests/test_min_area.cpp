// Tests for the min-cost-flow substrate and minimum-area retiming: flow
// optimality on hand-checked networks, min-area vs exhaustive search on
// small random graphs (the LP-dual correctness probe), and the interaction
// with the min-period algorithm.

#include <gtest/gtest.h>

#include <random>

#include "retime/graph.h"
#include "retime/leiserson_saxe.h"
#include "retime/min_area.h"
#include "retime/mincost_flow.h"

namespace r = eda::retime;

TEST(MinCostFlow, HandCheckedTransshipment) {
  // 0 supplies 2 units; 2 demands 2; path costs: 0->1->2 = 3, 0->2 = 5.
  r::MinCostFlow f(3);
  f.add_arc(0, 1, 2, 1);
  f.add_arc(1, 2, 1, 2);   // capacity 1 forces a split
  f.add_arc(0, 2, 2, 5);
  auto cost = f.solve({-2, 0, 2});
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, 3 + 5);  // one unit via 0-1-2, one via 0-2
  EXPECT_EQ(f.arc_flow(1), 1);
}

TEST(MinCostFlow, NegativeCostsViaPotentials) {
  r::MinCostFlow f(3);
  f.add_arc(0, 1, 1, -4);
  f.add_arc(1, 2, 1, 1);
  auto cost = f.solve({-1, 0, 1});
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, -3);
}

TEST(MinCostFlow, InfeasibleDemandReturnsNullopt) {
  r::MinCostFlow f(2);
  // No arcs at all: supply cannot reach demand.
  EXPECT_EQ(f.solve({-1, 1}), std::nullopt);
}

TEST(MinCostFlow, RejectsUnbalancedImbalance) {
  r::MinCostFlow f(2);
  f.add_arc(0, 1, 1, 1);
  EXPECT_THROW(f.solve({-1, 2}), r::FlowError);
}

TEST(MinArea, CorrelatorExample) {
  // The classic LS correlator shape: a ring through the host with unit
  // delays; min-period retiming typically *increases* register count,
  // min-area brings it back down at the same period.
  r::RetimeGraph g;
  g.delay = {0, 3, 3, 3, 3};  // host + 4 comparators
  g.vertex_signal.assign(5, -1);
  g.edges = {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 0, 0}};
  // Already periodic structure: every edge weight stays >= 0.
  int base_period = r::clock_period(g);
  r::MinAreaResult res = r::min_area_retiming(g, base_period);
  EXPECT_LE(res.period, base_period);
  EXPECT_LE(res.register_count, r::total_registers(g));
  EXPECT_EQ(res.r[0], 0);
}

TEST(MinArea, MatchesBruteForceOnRandomGraphs) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    // Random strongly-connectable graph on 4 vertices + host.
    r::RetimeGraph g;
    int n = 4;
    g.delay.assign(static_cast<std::size_t>(n + 1), 0);
    g.vertex_signal.assign(static_cast<std::size_t>(n + 1), -1);
    for (int v = 1; v <= n; ++v) {
      g.delay[static_cast<std::size_t>(v)] = 1 + static_cast<int>(rng() % 3);
    }
    // A host cycle guarantees every vertex lies on a registered cycle.
    for (int v = 0; v <= n; ++v) {
      g.edges.push_back(
          {v, (v + 1) % (n + 1), 1 + static_cast<int>(rng() % 2)});
    }
    // Extra random chords.
    for (int k = 0; k < 3; ++k) {
      int u = static_cast<int>(rng() % (n + 1));
      int v = static_cast<int>(rng() % (n + 1));
      if (u == v) continue;
      g.edges.push_back({u, v, static_cast<int>(rng() % 3)});
    }
    int period;
    try {
      period = r::min_period_retiming(g).period;
    } catch (const eda::circuit::RtlError&) {
      continue;  // graph had a zero-weight cycle even after retiming
    }
    r::MinAreaResult fast = r::min_area_retiming(g, period);
    long long slow = r::brute_force_min_area(g, period, 3);
    EXPECT_EQ(fast.register_count, slow) << "trial " << trial;
    EXPECT_LE(fast.period, period) << "trial " << trial;
  }
}

TEST(MinArea, InfeasiblePeriodThrows) {
  r::RetimeGraph g;
  g.delay = {0, 5, 5};
  g.vertex_signal.assign(3, -1);
  // A zero-register cycle between 1 and 2 pins the period at >= 10.
  g.edges = {{0, 1, 1}, {1, 2, 0}, {2, 1, 0}, {2, 0, 0}};
  EXPECT_THROW(r::min_area_retiming(g, 3), r::FlowError);
}

TEST(MinArea, NeverWorseThanMinPeriodLabels) {
  // On the netlist-derived graph of the deep pipeline, min-area at the
  // optimal period must not use more registers than the min-period labels.
  auto make = [](int stages) {
    eda::circuit::Rtl rtl;
    auto i = rtl.add_input("i", 4);
    auto rg = rtl.add_reg("R", 4, 0);
    eda::circuit::SignalId s = rg;
    for (int k = 0; k < stages; ++k) {
      s = rtl.add_op(eda::circuit::Op::Add, {s, rtl.add_const(4, 1)});
    }
    rtl.set_reg_next(rg, rtl.add_op(eda::circuit::Op::Xor, {s, i}));
    rtl.add_output("y", s);
    rtl.validate();
    return rtl;
  };
  eda::circuit::Rtl rtl = make(4);
  r::RetimeGraph g = r::graph_from_rtl(rtl);
  r::RetimingResult mp = r::min_period_retiming(g);
  long long mp_regs = r::total_registers(r::apply_retiming(g, mp.r));
  r::MinAreaResult ma = r::min_area_retiming(g, mp.period);
  EXPECT_LE(ma.register_count, mp_regs);
  EXPECT_LE(ma.period, mp.period);
}
