// Tests for formal backward retiming (paper, section IV.A: "Backward
// retiming is more complex since one has to find the q's corresponding to
// some expression representing f(q')").  Covers the dual cut-legality
// checks, the initial-state solver (inversion and brute-force paths), the
// image-emptiness failure mode, and the forward/backward round trip
// composed through the transitivity rule.

#include <gtest/gtest.h>

#include "bench_gen/fig2.h"
#include "hash/backward.h"
#include "hash/compound.h"
#include "hash/retime_step.h"
#include "logic/bool_thms.h"

namespace c = eda::circuit;
namespace h = eda::hash;
namespace k = eda::kernel;
namespace l = eda::logic;
using c::Op;
using c::Rtl;
using c::SignalId;
using k::Thm;

namespace {

/// reg R (width 4, init `reg_init`) --> f-cone --> R;  output = R | i.
/// `make_cone` builds the f-cone from the register output and returns the
/// node ids that form the backward cut.
struct LoopCircuit {
  Rtl rtl;
  h::BackwardCut cut;
  SignalId reg;
};

LoopCircuit make_loop(
    std::uint64_t reg_init,
    const std::function<SignalId(Rtl&, SignalId, h::BackwardCut&)>&
        make_cone) {
  LoopCircuit lc;
  SignalId i = lc.rtl.add_input("i", 4);
  lc.reg = lc.rtl.add_reg("R", 4, reg_init);
  SignalId next = make_cone(lc.rtl, lc.reg, lc.cut);
  lc.rtl.set_reg_next(lc.reg, next);
  SignalId out = lc.rtl.add_op(Op::Or, {lc.reg, i});
  lc.rtl.add_output("y", out);
  lc.rtl.validate();
  return lc;
}

}  // namespace

TEST(BackwardSplit, InverseOfForwardCutOnFig2) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  h::RetimeMapping fwd =
      h::conventional_retime_mapped(fig2.rtl, fig2.good_cut);
  h::BackwardCut inv = h::inverse_of_forward_cut(fwd, fig2.good_cut);
  ASSERT_EQ(inv.f_nodes.size(), 1u);
  h::BackwardSplit split = h::compile_backward_split(fwd.rtl, inv);
  EXPECT_EQ(split.chi.size(), 1u);
  // The register moves back to the MUX output (the incrementer's input).
  EXPECT_EQ(fwd.rtl.node(split.chi[0]).op, Op::Mux);
}

TEST(BackwardSplit, CutFeedingOutputThrows) {
  // The f-node drives a primary output, so the registers cannot move
  // backward across it (the value is consumed before the register bank).
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId r = rtl.add_reg("R", 4, 0);
  SignalId inc = rtl.add_op(Op::Add, {r, rtl.add_const(4, 1)});
  rtl.set_reg_next(r, inc);
  rtl.add_output("y", inc);
  (void)i;
  h::BackwardCut cut{{inc}};
  EXPECT_THROW(h::compile_backward_split(rtl, cut), h::BackwardError);
}

TEST(BackwardSplit, CutFeedingGNodeThrows) {
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId r = rtl.add_reg("R", 4, 0);
  SignalId inc = rtl.add_op(Op::Add, {r, rtl.add_const(4, 1)});
  rtl.set_reg_next(r, inc);
  SignalId y = rtl.add_op(Op::Xor, {inc, i});  // g-node consuming an f-node
  rtl.add_output("y", y);
  h::BackwardCut cut{{inc}};
  EXPECT_THROW(h::compile_backward_split(rtl, cut), h::BackwardError);
}

TEST(BackwardSplit, FlagLeafThrows) {
  // Moving a register across a MUX whose select comes from g would require
  // registering the 1-bit flag; the split must reject it.
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId r = rtl.add_reg("R", 4, 0);
  SignalId flag = rtl.add_op(Op::Eq, {r, i});
  SignalId mux = rtl.add_op(Op::Mux, {flag, r, i});
  rtl.set_reg_next(r, mux);
  rtl.add_output("y", rtl.add_op(Op::Or, {r, i}));
  h::BackwardCut cut{{mux}};
  EXPECT_THROW(h::compile_backward_split(rtl, cut), h::BackwardError);
}

TEST(BackwardSolve, InvertsAddXorChain) {
  // f(x) = (x + 3) ^ 5 over 4 bits; register holds 9.
  // q0 must satisfy ((q0 + 3) mod 16) ^ 5 = 9  =>  q0 + 3 = 12  =>  q0 = 9.
  auto lc = make_loop(9, [](Rtl& rtl, SignalId r, h::BackwardCut& cut) {
    SignalId a = rtl.add_op(Op::Add, {r, rtl.add_const(4, 3)});
    SignalId x = rtl.add_op(Op::Xor, {a, rtl.add_const(4, 5)});
    cut.f_nodes = {a, x};
    return x;
  });
  h::BackwardSplit split = h::compile_backward_split(lc.rtl, lc.cut);
  auto q0 = h::solve_initial_state(lc.rtl, lc.cut, split.chi);
  ASSERT_EQ(q0.size(), 1u);
  EXPECT_EQ(q0[0], 9u);
}

TEST(BackwardSolve, InvertsOddMultiplier) {
  // f(x) = 3*x mod 16; register holds 9; 3^-1 = 11 (mod 16), q0 = 99 mod
  // 16 = 3.
  auto lc = make_loop(9, [](Rtl& rtl, SignalId r, h::BackwardCut& cut) {
    SignalId m = rtl.add_op(Op::Mul, {rtl.add_const(4, 3), r});
    cut.f_nodes = {m};
    return m;
  });
  h::BackwardSplit split = h::compile_backward_split(lc.rtl, lc.cut);
  auto q0 = h::solve_initial_state(lc.rtl, lc.cut, split.chi);
  ASSERT_EQ(q0.size(), 1u);
  EXPECT_EQ(q0[0], 3u);
}

TEST(BackwardSolve, BruteForcesNonInvertibleCone) {
  // f(x) = x*x mod 16; register holds 9.  Squaring is not invertible by
  // local propagation, so the solver falls back to search; 3*3 = 9 is one
  // of the four square roots of 9 modulo 16 and any of them is acceptable
  // (the formal step proves whichever the solver returns).
  auto lc = make_loop(9, [](Rtl& rtl, SignalId r, h::BackwardCut& cut) {
    SignalId m = rtl.add_op(Op::Mul, {r, r});
    cut.f_nodes = {m};
    return m;
  });
  h::BackwardSplit split = h::compile_backward_split(lc.rtl, lc.cut);
  auto q0 = h::solve_initial_state(lc.rtl, lc.cut, split.chi);
  ASSERT_EQ(q0.size(), 1u);
  EXPECT_EQ((q0[0] * q0[0]) % 16, 9u);
}

TEST(BackwardSolve, NotInImageThrows) {
  // f(x) = x & 0 can only produce 0, but the register holds 1: the move is
  // impossible — there is no yesterday whose f-image is today.
  auto lc = make_loop(1, [](Rtl& rtl, SignalId r, h::BackwardCut& cut) {
    SignalId m = rtl.add_op(Op::And, {r, rtl.add_const(4, 0)});
    cut.f_nodes = {m};
    return m;
  });
  h::BackwardSplit split = h::compile_backward_split(lc.rtl, lc.cut);
  EXPECT_THROW(h::solve_initial_state(lc.rtl, lc.cut, split.chi),
               h::BackwardError);
  EXPECT_THROW(h::formal_backward_retime(lc.rtl, lc.cut), h::BackwardError);
}

TEST(BackwardSolve, InvertsSubBothOrientations) {
  // a - x and x - b both invert against a ground operand.
  auto lc1 = make_loop(5, [](Rtl& rtl, SignalId r, h::BackwardCut& cut) {
    SignalId s = rtl.add_op(Op::Sub, {rtl.add_const(4, 13), r});
    cut.f_nodes = {s};
    return s;
  });
  auto split1 = h::compile_backward_split(lc1.rtl, lc1.cut);
  auto q1 = h::solve_initial_state(lc1.rtl, lc1.cut, split1.chi);
  EXPECT_EQ((13 - q1[0]) & 15, 5u);

  auto lc2 = make_loop(5, [](Rtl& rtl, SignalId r, h::BackwardCut& cut) {
    SignalId s = rtl.add_op(Op::Sub, {r, rtl.add_const(4, 13)});
    cut.f_nodes = {s};
    return s;
  });
  auto split2 = h::compile_backward_split(lc2.rtl, lc2.cut);
  auto q2 = h::solve_initial_state(lc2.rtl, lc2.cut, split2.chi);
  EXPECT_EQ((q2[0] - 13) & 15, 5u);
}

TEST(BackwardSolve, MuxWithGroundSelectInverts) {
  // sel is a ground comparison of constants, so inversion descends into
  // the selected branch only.
  auto lc = make_loop(9, [](Rtl& rtl, SignalId r, h::BackwardCut& cut) {
    SignalId sel = rtl.add_op(Op::Eq, {rtl.add_const(4, 3),
                                       rtl.add_const(4, 3)});
    SignalId inc = rtl.add_op(Op::Add, {r, rtl.add_const(4, 1)});
    SignalId mux = rtl.add_op(Op::Mux, {sel, inc, rtl.add_const(4, 0)});
    cut.f_nodes = {sel, inc, mux};
    return mux;
  });
  h::FormalBackwardResult res = h::formal_backward_retime(lc.rtl, lc.cut);
  EXPECT_EQ(res.q0[0], 8u);  // 8 + 1 = 9 through the taken branch
  EXPECT_TRUE(c::simulation_equivalent(lc.rtl, res.retimed, 300, 3));
}

TEST(BackwardSolve, SharedLeafAcrossTwoCones) {
  // Two registers fed by cones over the SAME chi leaf: the first equation
  // pins it by inversion, the second is then checked for consistency.
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId a = rtl.add_reg("A", 4, 7);
  SignalId b = rtl.add_reg("B", 4, 9);
  SignalId inc = rtl.add_op(Op::Add, {a, rtl.add_const(4, 1)});   // leaf: A
  SignalId inc3 = rtl.add_op(Op::Add, {a, rtl.add_const(4, 3)});
  rtl.set_reg_next(a, inc);
  rtl.set_reg_next(b, inc3);
  rtl.add_output("y", rtl.add_op(Op::Or, {rtl.add_op(Op::Xor, {a, b}), i}));
  rtl.validate();
  h::BackwardCut cut{{inc, inc3}};
  h::FormalBackwardResult res = h::formal_backward_retime(rtl, cut);
  ASSERT_EQ(res.q0.size(), 1u);
  EXPECT_EQ(res.q0[0], 6u);  // 6+1=7 and 6+3=9 both hold
  EXPECT_TRUE(c::simulation_equivalent(rtl, res.retimed, 300, 8));

  // Inconsistent targets: A=7 needs leaf 6, B=8 needs leaf 5 — no state.
  Rtl bad;
  SignalId i2 = bad.add_input("i", 4);
  SignalId a2 = bad.add_reg("A", 4, 7);
  SignalId b2 = bad.add_reg("B", 4, 8);
  SignalId u = bad.add_op(Op::Add, {a2, bad.add_const(4, 1)});
  SignalId v = bad.add_op(Op::Add, {a2, bad.add_const(4, 3)});
  bad.set_reg_next(a2, u);
  bad.set_reg_next(b2, v);
  bad.add_output("y", bad.add_op(Op::Or, {bad.add_op(Op::Xor, {a2, b2}), i2}));
  bad.validate();
  EXPECT_THROW(h::formal_backward_retime(bad, h::BackwardCut{{u, v}}),
               h::BackwardError);
}

TEST(FormalBackward, TheoremShapeAndPurity) {
  auto lc = make_loop(9, [](Rtl& rtl, SignalId r, h::BackwardCut& cut) {
    SignalId a = rtl.add_op(Op::Add, {r, rtl.add_const(4, 3)});
    cut.f_nodes = {a};
    return a;
  });
  h::FormalBackwardResult res = h::formal_backward_retime(lc.rtl, lc.cut);
  // The theorem may depend on the ground-arithmetic compute oracle only.
  for (const std::string& tag : res.theorem.oracles()) {
    EXPECT_EQ(tag, "NUM_COMPUTE");
  }
  EXPECT_TRUE(res.theorem.hyps().empty());
  // Its left side is the input circuit, its right side the retimed one.
  auto [vars, body] = l::strip_forall(res.theorem.concl());
  EXPECT_EQ(vars.size(), 2u);
  h::CompiledCircuit orig = h::compile(lc.rtl);
  h::CompiledCircuit ret = h::compile(res.retimed);
  auto [lf, largs] = k::strip_comb(k::eq_lhs(body));
  auto [rf, rargs] = k::strip_comb(k::eq_rhs(body));
  ASSERT_EQ(largs.size(), 4u);
  ASSERT_EQ(rargs.size(), 4u);
  EXPECT_TRUE(largs[0] == orig.h);
  EXPECT_TRUE(largs[1] == orig.q);
  EXPECT_TRUE(rargs[0] == ret.h);
  EXPECT_TRUE(rargs[1] == ret.q);
  EXPECT_EQ(res.q0.size(), 1u);
  EXPECT_EQ(res.q0[0], 6u);  // 6 + 3 = 9
}

TEST(FormalBackward, SimulationEquivalent) {
  auto lc = make_loop(9, [](Rtl& rtl, SignalId r, h::BackwardCut& cut) {
    SignalId a = rtl.add_op(Op::Add, {r, rtl.add_const(4, 3)});
    SignalId x = rtl.add_op(Op::Xor, {a, rtl.add_const(4, 5)});
    cut.f_nodes = {a, x};
    return x;
  });
  h::FormalBackwardResult res = h::formal_backward_retime(lc.rtl, lc.cut);
  EXPECT_TRUE(c::simulation_equivalent(lc.rtl, res.retimed, 300, 77));
}

TEST(FormalBackward, UndoesForwardRetimingOnFig2) {
  // forward(fig2, {+1}) then backward across the moved incrementer must
  // restore the original automaton; composing the two theorems by
  // transitivity yields |- AUT h q i t = AUT h q i t.
  auto fig2 = eda::bench_gen::make_fig2(4);
  h::FormalRetimeResult fwd = h::formal_retime(fig2.rtl, fig2.good_cut);
  h::RetimeMapping map =
      h::conventional_retime_mapped(fig2.rtl, fig2.good_cut);
  h::BackwardCut inv = h::inverse_of_forward_cut(map, fig2.good_cut);
  h::FormalBackwardResult bwd = h::formal_backward_retime(fwd.retimed, inv);

  EXPECT_TRUE(c::simulation_equivalent(fig2.rtl, bwd.retimed, 300, 5));

  Thm round_trip = h::compose_steps(fwd.theorem, bwd.theorem);
  auto [vars, body] = l::strip_forall(round_trip.concl());
  EXPECT_TRUE(k::eq_lhs(body) == k::eq_rhs(body));

  // And the restored netlist is structurally the original again.
  h::CompiledCircuit orig = h::compile(fig2.rtl);
  h::CompiledCircuit back = h::compile(bwd.retimed);
  EXPECT_TRUE(orig.h == back.h);
  EXPECT_TRUE(orig.q == back.q);
}

TEST(FormalBackward, IdentityComponentRegisterPinsLeaf) {
  // Two registers: A is moved across an incrementer, B's next bypasses the
  // cut (identity component of f) — its leaf is pinned to B's own initial
  // value.
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId a = rtl.add_reg("A", 4, 7);
  SignalId b = rtl.add_reg("B", 4, 2);
  SignalId inc = rtl.add_op(Op::Add, {a, rtl.add_const(4, 1)});
  SignalId mix = rtl.add_op(Op::Xor, {b, i});
  rtl.set_reg_next(a, inc);
  rtl.set_reg_next(b, mix);
  rtl.add_output("y", rtl.add_op(Op::Or, {a, b}));
  rtl.validate();

  h::BackwardCut cut{{inc}};
  h::FormalBackwardResult res = h::formal_backward_retime(rtl, cut);
  ASSERT_EQ(res.chi.size(), 2u);
  // chi[0] = A's output (feeds the incrementer), chi[1] = mix (B's next).
  EXPECT_EQ(res.q0[0], 6u);  // 6 + 1 = 7
  EXPECT_EQ(res.q0[1], 2u);  // pinned to B's initial value
  EXPECT_TRUE(c::simulation_equivalent(rtl, res.retimed, 300, 9));
}

TEST(FormalBackward, RoundTripOnDeepPipeline) {
  // Property over several prefix cuts of the deep pipeline: forward then
  // inverse-backward always restores the original automaton.
  for (int stages : {1, 2, 3}) {
    auto deep = eda::bench_gen::make_fig2_deep(4, 3);
    h::Cut cut;
    cut.f_nodes.assign(deep.inc_nodes.begin(),
                       deep.inc_nodes.begin() + stages);
    h::FormalRetimeResult fwd = h::formal_retime(deep.rtl, cut);
    h::RetimeMapping map = h::conventional_retime_mapped(deep.rtl, cut);
    h::BackwardCut inv = h::inverse_of_forward_cut(map, cut);
    h::FormalBackwardResult bwd = h::formal_backward_retime(fwd.retimed, inv);
    h::CompiledCircuit orig = h::compile(deep.rtl);
    h::CompiledCircuit back = h::compile(bwd.retimed);
    EXPECT_TRUE(orig.h == back.h) << "stages=" << stages;
    EXPECT_TRUE(orig.q == back.q) << "stages=" << stages;
  }
}
