// Conformance battery for the CacheBackend seam (service/cache_backend.h):
// every backend — in-process, file-bound, remote (eda_cached client) — must
// carry the GoalCache accounting contract verbatim (1 miss + k-1 hits per
// goal, no matter the interleaving or where the entry was found), share
// entries across alpha-equivalent spellings, cold-start cleanly on schema
// skew and union entries on persist.  The remote-only section embeds a
// CacheServer so daemon kill/restart is deterministic: a dead daemon must
// never lose a verdict or produce a wrong one, only degrade.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "kernel/shard.h"
#include "kernel/terms.h"
#include "kernel/thm.h"
#include "service/cache_backend.h"
#include "service/cache_file.h"
#include "service/cache_server.h"
#include "service/fault.h"
#include "service/remote_backend.h"
#include "service/remote_proto.h"
#include "testlib/gen.h"

namespace k = eda::kernel;
namespace svc = eda::service;
using eda::testlib::TermGen;
using eda::verify::VerifyResult;
using k::Term;
using k::Thm;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

VerifyResult verdict(int iterations, bool equivalent = true) {
  VerifyResult v;
  v.completed = true;
  v.equivalent = equivalent;
  v.iterations = iterations;
  v.seconds = 0.125 * iterations;
  v.peak = static_cast<std::size_t>(100 + iterations);
  return v;
}

/// One backend under test plus whatever keeps it alive (the embedded
/// daemon for the remote case, the bound file path for the file case).
struct Rig {
  std::unique_ptr<svc::CacheServer> server;  // remote only
  std::unique_ptr<svc::CacheBackend> backend;
  std::string file;  // file only

  ~Rig() {
    backend.reset();  // client closes its socket before the daemon dies
    if (server) server->stop();
  }
};

svc::RemoteBackendOptions remote_opts(const std::string& server,
                                      const std::string& tenant = "test",
                                      int pool = 4, bool batch = true) {
  svc::RemoteBackendOptions o;
  o.server = server;
  o.tenant = tenant;
  // Keep the degradation window short so kill/restart tests converge in
  // milliseconds, not the production seconds.
  o.backoff_ms = 1.0;
  o.backoff_cap_ms = 50.0;
  o.pool = pool;
  o.batch = batch;
  return o;
}

std::unique_ptr<Rig> make_rig(const std::string& kind,
                              const std::string& tag) {
  auto rig = std::make_unique<Rig>();
  if (kind == "in-process") {
    rig->backend = std::make_unique<svc::InProcessBackend>();
  } else if (kind == "file") {
    rig->file = temp_path("backend_" + tag + ".cache");
    std::remove(rig->file.c_str());
    rig->backend = std::make_unique<svc::FileBackend>(rig->file);
  } else {
    // "remote" plus optional "-pool1" / "-nobatch" suffixes: the battery
    // must hold at every (pool, batch) corner, pool=1 being the PR 9
    // single-socket client reproduced exactly.
    int pool = kind.find("-pool1") != std::string::npos ? 1 : 4;
    bool batch = kind.find("-nobatch") == std::string::npos;
    std::string sock = temp_path("cached_" + tag + ".sock");
    std::remove(sock.c_str());
    svc::CacheServerOptions sopts;
    sopts.listen = "unix:" + sock;
    sopts.shards = 4;
    rig->server = std::make_unique<svc::CacheServer>(sopts);
    rig->server->start();
    rig->backend = std::make_unique<svc::RemoteBackend>(
        remote_opts(sopts.listen, "test", pool, batch));
  }
  return rig;
}

class BackendConformance : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Rig> rig_;
  svc::CacheBackend& backend() { return *rig_->backend; }

  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string tag = std::string(GetParam()) + "_" + info->name();
    for (char& c : tag) {
      if (c == '/' || c == '-') c = '_';
    }
    rig_ = make_rig(GetParam(), tag);
  }
};

}  // namespace

// --- The accounting contract ------------------------------------------------

TEST_P(BackendConformance, KSubmissionsYieldOneMissAndKMinusOneHits) {
  svc::CacheBackend& b = backend();
  TermGen gen(0xacc7);
  Term goal = gen.random_goal(4);

  // Absent lookup counts NOTHING (the miss lands on the paired publish).
  bool was_hit = true;
  EXPECT_FALSE(b.lookup_theorem(goal, &was_hit).has_value());
  EXPECT_FALSE(was_hit);
  EXPECT_EQ(b.stats().theorems.hits, 0u);
  EXPECT_EQ(b.stats().theorems.misses, 0u);

  // The insert is the miss.
  auto [canonical, inserted] = b.publish_theorem(goal, Thm::refl(goal));
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(canonical.concl() == k::mk_eq(goal, goal));
  EXPECT_EQ(b.stats().theorems.misses, 1u);
  EXPECT_EQ(b.stats().theorems.hits, 0u);

  // Present lookups are hits; a redundant publish loses the "race" and is
  // a hit too.  4 submissions total: exactly 1 miss + 3 hits.
  EXPECT_TRUE(b.lookup_theorem(goal, &was_hit).has_value());
  EXPECT_TRUE(was_hit);
  EXPECT_TRUE(b.lookup_theorem(goal).has_value());
  auto [again, reinserted] = b.publish_theorem(goal, Thm::refl(goal));
  EXPECT_FALSE(reinserted);
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.theorems.misses, 1u);
  EXPECT_EQ(st.theorems.hits, 3u);
  EXPECT_EQ(st.theorems.entries, 1u);
}

TEST_P(BackendConformance, GetOrProveComposesWithoutDoubleCounting) {
  svc::CacheBackend& b = backend();
  TermGen gen(0x90f);
  Term goal = gen.random_goal(4);
  int proofs = 0;
  bool was_hit = true;
  Thm t1 = b.get_or_prove_theorem(
      goal,
      [&] {
        ++proofs;
        return Thm::refl(goal);
      },
      &was_hit);
  EXPECT_EQ(proofs, 1);
  EXPECT_FALSE(was_hit);
  Thm t2 = b.get_or_prove_theorem(
      goal,
      [&] {
        ++proofs;
        return Thm::refl(goal);
      },
      &was_hit);
  EXPECT_EQ(proofs, 1);  // served from the cache, not re-proved
  EXPECT_TRUE(was_hit);
  EXPECT_TRUE(t1.concl() == t2.concl());
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.theorems.misses, 1u);
  EXPECT_EQ(st.theorems.hits, 1u);
}

TEST_P(BackendConformance, VerdictContractMatchesTheoremContract) {
  svc::CacheBackend& b = backend();
  TermGen gen(0x7e5d);
  Term key = gen.random_goal(4);
  int proofs = 0;
  VerifyResult r1 = b.get_or_prove_verdict(
      key,
      [&] {
        ++proofs;
        return verdict(7);
      },
      [](const VerifyResult& v) { return v.completed; });
  VerifyResult r2 = b.get_or_prove_verdict(
      key,
      [&] {
        ++proofs;
        return verdict(999);  // must never be seen: the cache serves 7
      },
      [](const VerifyResult& v) { return v.completed; });
  EXPECT_EQ(proofs, 1);
  EXPECT_EQ(r1.iterations, 7);
  EXPECT_EQ(r2.iterations, 7);
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.verdicts.misses, 1u);
  EXPECT_EQ(st.verdicts.hits, 1u);
  EXPECT_EQ(st.verdicts.entries, 1u);
}

TEST_P(BackendConformance, UncacheableVerdictCountsMissWithoutInserting) {
  svc::CacheBackend& b = backend();
  TermGen gen(0xbad);
  Term key = gen.random_goal(4);
  VerifyResult blown;  // budget-blown: describes the machine, not the goal
  blown.completed = false;
  auto [returned, inserted] = b.publish_verdict(key, blown, false);
  EXPECT_FALSE(inserted);
  EXPECT_FALSE(returned.completed);
  EXPECT_EQ(b.stats().verdicts.misses, 1u);
  EXPECT_EQ(b.stats().verdicts.entries, 0u);
  // The key stays provable: the next submission is a fresh miss, not a
  // poisoned hit.
  EXPECT_FALSE(b.lookup_verdict(key).has_value());
}

// --- Alpha classes ------------------------------------------------------------

TEST_P(BackendConformance, AlphaEquivalentSpellingsShareOneEntry) {
  svc::CacheBackend& b = backend();
  // Same seed, different binder salts: pairwise alpha-equivalent goals
  // spelt differently (the test_serialize idiom).
  TermGen gen_u(0xa1fa, "u");
  TermGen gen_v(0xa1fa, "v");
  std::vector<Term> seen;  // the generator repeats goals; dedupe them
  int abs_pairs = 0, distinct = 0;
  for (int i = 0; i < 40; ++i) {
    Term a = gen_u.random_goal(3 + i % 5);
    Term bterm = gen_v.random_goal(3 + i % 5);
    ASSERT_TRUE(a == bterm) << "salt variants must be alpha-equal at " << i;
    bool dup = false;
    for (const Term& s : seen) {
      if (s == a) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    seen.push_back(a);
    if (!a.identical(bterm)) ++abs_pairs;
    b.publish_verdict(a, verdict(100 + distinct), true);
    bool was_hit = false;
    auto found = b.lookup_verdict(bterm, &was_hit);
    ASSERT_TRUE(found.has_value()) << "spelling v missed at " << i;
    EXPECT_TRUE(was_hit);
    EXPECT_EQ(found->iterations, 100 + distinct);
    ++distinct;
  }
  EXPECT_GT(abs_pairs, 3);  // the generator must exercise abstractions
  auto n = static_cast<std::uint64_t>(distinct);
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.verdicts.misses, n);
  EXPECT_EQ(st.verdicts.hits, n);
  EXPECT_EQ(st.verdicts.entries, n);
}

// --- Warm start / persist ----------------------------------------------------

TEST_P(BackendConformance, SchemaSkewIsADiagnosedColdStart) {
  svc::CacheBackend& b = backend();
  // A future-schema file: valid container, bumped schema field.
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  TermGen gen(0x5c4e);
  Term goal = gen.random_goal(4);
  thms.emplace(goal, Thm::refl(goal));
  std::string bytes = svc::PersistentCacheFile::encode(thms, verdicts);
  ASSERT_GT(bytes.size(), 8u);
  bytes[4] = static_cast<char>(bytes[4] + 1);  // header version field
  std::string path = temp_path("skewed_backend.cache");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  svc::CacheLoadResult r = b.warm_start(path);
  EXPECT_FALSE(r.loaded);
  EXPECT_NE(r.note.find("version"), std::string::npos);
  EXPECT_EQ(r.theorems, 0u);
  EXPECT_EQ(b.stats().theorems.entries, 0u);
  // And the backend stays fully usable after the cold start.
  auto [canonical, inserted] = b.publish_theorem(goal, Thm::refl(goal));
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(b.lookup_theorem(goal).has_value());
}

TEST_P(BackendConformance, WarmStartBypassesTheHitMissCounters) {
  // Warm-start admission is provenance, not workload: a loaded entry must
  // not inflate the hit rate before any obligation was served.
  std::string path = temp_path("warm_counters.cache");
  std::remove(path.c_str());
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  TermGen gen(0x3a3);
  Term goal = gen.random_goal(4);
  thms.emplace(goal, Thm::refl(goal));
  verdicts.emplace(k::mk_eq(goal, goal), verdict(3));
  svc::PersistentCacheFile(path).save(thms, verdicts);

  svc::CacheBackend& b = backend();
  svc::CacheLoadResult r = b.warm_start(path);
  ASSERT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(r.theorems, 1u);
  EXPECT_EQ(r.verdicts, 1u);
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.theorems.hits + st.theorems.misses, 0u);
  EXPECT_EQ(st.verdicts.hits + st.verdicts.misses, 0u);
  // The first real submission of a warm goal is a HIT — that is the whole
  // point of warm starting.
  EXPECT_TRUE(b.lookup_theorem(goal).has_value());
  EXPECT_EQ(b.stats().theorems.hits, 1u);
}

TEST_P(BackendConformance, PersistMergesWithEntriesAlreadyOnDisk) {
  std::string path = temp_path("merge_backend.cache");
  std::remove(path.c_str());
  TermGen gen(0x6e6);
  std::vector<Term> goals;
  for (int i = 0; i < 8; ++i) goals.push_back(gen.random_goal(4));

  // Another process already persisted the first half.
  {
    svc::TheoremCache thms;
    svc::VerdictCache verdicts;
    for (int i = 0; i < 4; ++i) thms.emplace(goals[i], Thm::refl(goals[i]));
    svc::PersistentCacheFile(path).save(thms, verdicts);
  }
  // This backend only ever saw the second half.
  svc::CacheBackend& b = backend();
  for (int i = 4; i < 8; ++i) b.publish_theorem(goals[i], Thm::refl(goals[i]));
  b.persist(path);

  // Union semantics: every key survives the save race.
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  svc::CacheLoadResult r = svc::PersistentCacheFile(path).load(thms, verdicts);
  ASSERT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(thms.stats().entries, 8u);
  for (const Term& g : goals) EXPECT_TRUE(thms.find(g).has_value());
}

// --- Concurrency ---------------------------------------------------------------

TEST_P(BackendConformance, ConcurrentPublishKeepsTheContract) {
  svc::CacheBackend& b = backend();
  TermGen gen(0xc0c);
  Term key = gen.random_goal(4);
  constexpr int kThreads = 4;
  std::atomic<int> inserted_count{0};
  std::vector<int> canonical_iters(kThreads, -1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto [canonical, inserted] = b.publish_verdict(key, verdict(t), true);
      if (inserted) inserted_count.fetch_add(1);
      canonical_iters[static_cast<std::size_t>(t)] = canonical.iterations;
    });
  }
  for (std::thread& th : threads) th.join();

  // Exactly one publisher won; everyone holds the winner's verdict.
  EXPECT_EQ(inserted_count.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(canonical_iters[static_cast<std::size_t>(t)],
              canonical_iters[0]);
  }
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.verdicts.misses, 1u);
  EXPECT_EQ(st.verdicts.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(st.verdicts.entries, 1u);
}

TEST_P(BackendConformance, BatchedVerdictOpsKeepTheContract) {
  svc::CacheBackend& b = backend();
  TermGen gen(0xba7c4);
  std::vector<Term> keys;
  while (keys.size() < 6) {
    Term t = gen.random_goal(4);
    bool dup = false;
    for (const Term& s : keys) {
      if (s == t) {
        dup = true;
        break;
      }
    }
    if (!dup) keys.push_back(t);
  }
  const auto n = static_cast<std::uint64_t>(keys.size());

  // A batched lookup of absent keys counts NOTHING, exactly like the
  // single-entry lookup (the misses land on the paired publish).
  std::vector<std::uint8_t> hits;
  std::vector<std::optional<VerifyResult>> found =
      b.lookup_verdicts(keys, &hits);
  ASSERT_EQ(found.size(), keys.size());
  ASSERT_EQ(hits.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_FALSE(found[i].has_value()) << i;
    EXPECT_EQ(hits[i], 0) << i;
  }
  EXPECT_EQ(b.stats().verdicts.hits + b.stats().verdicts.misses, 0u);

  // One batched publish: each insert is a miss; entry 0 is uncacheable
  // (budget-blown) and counts its miss WITHOUT inserting.
  std::vector<svc::VerdictPublish> pubs;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    VerifyResult v = verdict(100 + static_cast<int>(i), i % 2 == 0);
    if (i == 0) v.completed = false;
    pubs.push_back({keys[i], v, i != 0});
  }
  std::vector<std::pair<VerifyResult, bool>> published =
      b.publish_verdicts(pubs);
  ASSERT_EQ(published.size(), keys.size());
  EXPECT_FALSE(published[0].second);  // uncacheable: returned uninserted
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_TRUE(published[i].second) << i;
    EXPECT_EQ(published[i].first.iterations, 100 + static_cast<int>(i));
  }
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.verdicts.misses, n);
  EXPECT_EQ(st.verdicts.hits, 0u);
  EXPECT_EQ(st.verdicts.entries, n - 1);

  // A second batched publish loses every race on the cached entries
  // (hits) and finally inserts key 0 (miss); the canonical values are the
  // FIRST publication's, never the re-submitted ones.
  std::vector<svc::VerdictPublish> again;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    again.push_back({keys[i], verdict(999), true});
  }
  published = b.publish_verdicts(again);
  EXPECT_TRUE(published[0].second);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_FALSE(published[i].second) << i;
    EXPECT_EQ(published[i].first.iterations, 100 + static_cast<int>(i));
    EXPECT_EQ(published[i].first.equivalent, i % 2 == 0);
  }
  st = b.stats();
  EXPECT_EQ(st.verdicts.misses, n + 1);
  EXPECT_EQ(st.verdicts.hits, n - 1);
  EXPECT_EQ(st.verdicts.entries, n);

  // And a batched lookup now hits every entry, was_hit mirroring the
  // single lookup's out-param per entry.
  found = b.lookup_verdicts(keys, &hits);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i].has_value()) << i;
    EXPECT_EQ(hits[i], 1) << i;
  }
  EXPECT_EQ(b.stats().verdicts.hits, (n - 1) + n);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values("in-process", "file", "remote",
                                           "remote-pool1", "remote-nobatch",
                                           "remote-pool1-nobatch"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --- Shard selection (the ROADMAP `h % kShards` trap) -----------------------

TEST(ShardMixer, EntropyPoorHashesStillSpread) {
  // Arena-aligned / structurally built hashes keep their entropy in the
  // low-middle bits; here every sample has 6 dead low bits.  The naive
  // selector collapses ALL of them into shard 0 — the exact trap — while
  // the multiply-mixer spreads them across every shard.
  std::set<std::size_t> mixed, naive;
  for (std::size_t i = 1; i <= 256; ++i) {
    std::size_t h = i * 64;
    mixed.insert(k::shard_index_of(h, 8));
    naive.insert(h % 8);
  }
  EXPECT_EQ(naive.size(), 1u);  // the trap, demonstrated
  EXPECT_EQ(mixed.size(), 8u);  // the fix, demonstrated
}

TEST(ShardMixer, RealAlphaHashesSpreadAcrossDaemonShards) {
  // The daemon's selector input is Term::hash() — check the distribution
  // it will actually see, at the daemon's default shard count.
  TermGen gen(0xd15c);
  std::vector<std::size_t> counts(8, 0);
  for (int i = 0; i < 400; ++i) {
    ++counts[k::shard_index_of(gen.random_goal(3 + i % 5).hash(), 8)];
  }
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_GT(counts[s], 10u) << "shard " << s << " starved";
  }
}

// --- Remote-specific: the shared tier and the failure story ------------------

namespace {

/// A daemon on a fresh unix socket plus N clients against it.
struct Fleet {
  std::string sock;
  std::unique_ptr<svc::CacheServer> server;

  explicit Fleet(const std::string& tag, std::string cache_file = "") {
    sock = temp_path("fleet_" + tag + ".sock");
    std::remove(sock.c_str());
    svc::CacheServerOptions sopts;
    sopts.listen = "unix:" + sock;
    sopts.shards = 4;
    sopts.cache_file = std::move(cache_file);
    server = std::make_unique<svc::CacheServer>(sopts);
  }

  std::unique_ptr<svc::RemoteBackend> client(const std::string& tenant,
                                             int pool = 4,
                                             bool batch = true) {
    return std::make_unique<svc::RemoteBackend>(
        remote_opts("unix:" + sock, tenant, pool, batch));
  }

  ~Fleet() {
    if (server) server->stop();
  }
};

}  // namespace

TEST(RemoteBackend, TwoClientsShareAlphaEquivalentEntriesThroughTheDaemon) {
  Fleet fleet("share");
  fleet.server->start();
  auto a = fleet.client("tenant-a");
  auto b = fleet.client("tenant-b");

  // Client A proves under one spelling; client B must hit under the other
  // — the daemon re-interns request terms, so the key is the alpha class,
  // not the wire bytes.
  TermGen gen_u(0x5a5a, "u");
  TermGen gen_v(0x5a5a, "v");
  std::vector<Term> seen;  // the generator repeats goals; dedupe them
  int distinct = 0;
  for (int i = 0; i < 10; ++i) {
    Term spelt_u = gen_u.random_goal(3 + i % 5);
    Term spelt_v = gen_v.random_goal(3 + i % 5);
    ASSERT_TRUE(spelt_u == spelt_v);
    bool dup = false;
    for (const Term& s : seen) {
      if (s == spelt_u) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    seen.push_back(spelt_u);
    a->publish_verdict(spelt_u, verdict(100 + distinct, distinct % 2 == 0),
                       true);
    bool was_hit = false;
    auto found = b->lookup_verdict(spelt_v, &was_hit);
    ASSERT_TRUE(found.has_value()) << "client B missed at " << i;
    EXPECT_TRUE(was_hit);
    EXPECT_EQ(found->iterations, 100 + distinct);
    EXPECT_EQ(found->equivalent, distinct % 2 == 0);
    ++distinct;
  }
  ASSERT_GT(distinct, 3);
  auto n = static_cast<std::uint64_t>(distinct);
  // B's obligations were all served by A's proofs: pure hits.
  svc::BackendStats bs = b->stats();
  EXPECT_EQ(bs.verdicts.hits, n);
  EXPECT_EQ(bs.verdicts.misses, 0u);
  EXPECT_EQ(bs.remote_failures, 0u);
  // The daemon saw both tenants.
  svc::CacheServerStats ds = fleet.server->stats();
  EXPECT_EQ(ds.tenants, 2u);
  EXPECT_EQ(ds.verdict_entries, n);
  EXPECT_GE(ds.lookup_hits, n);
}

TEST(RemoteBackend, DaemonDeathDegradesWithoutLosingOrCorruptingVerdicts) {
  Fleet fleet("kill");
  fleet.server->start();
  auto client = fleet.client("survivor");
  TermGen gen(0xdead);
  Term proved_before = gen.random_goal(4);
  client->publish_verdict(proved_before, verdict(11, false), true);
  ASSERT_TRUE(client->healthy());

  // Kill the daemon mid-use.
  fleet.server->stop();
  fleet.server.reset();

  // Everything proved before the death is still served, with the exact
  // same verdict (the fallback holds it; no wire round-trip involved).
  auto still = client->lookup_verdict(proved_before, nullptr);
  ASSERT_TRUE(still.has_value());
  EXPECT_EQ(still->iterations, 11);
  EXPECT_FALSE(still->equivalent);

  // New obligations keep working: the first one eats the transport error
  // (remote_failures), later ones ride the degradation window
  // (degraded_ops) and are served locally.  No exception ever escapes.
  Term proved_after = gen.random_goal(4);
  auto [canonical, inserted] =
      client->publish_verdict(proved_after, verdict(22), true);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(canonical.iterations, 22);
  for (int i = 0; i < 5; ++i) {
    Term fresh = gen.random_goal(4);
    client->publish_theorem(fresh, Thm::refl(fresh));
    EXPECT_TRUE(client->lookup_theorem(fresh, nullptr).has_value());
  }
  svc::BackendStats st = client->stats();
  EXPECT_GE(st.remote_failures, 1u);
  EXPECT_GE(st.degraded_ops, 1u);
  EXPECT_FALSE(client->healthy());
  EXPECT_FALSE(client->last_error().empty());
  // The accounting contract survived the outage: every publish above was
  // a first submission (miss), every lookup a hit.
  EXPECT_EQ(st.verdicts.misses, 2u);
  EXPECT_EQ(st.theorems.misses, 5u);
  EXPECT_EQ(st.theorems.hits, 5u);
}

TEST(RemoteBackend, ClientReconnectsAfterDaemonRestart) {
  std::string cache_file = temp_path("restart_daemon.cache");
  std::remove(cache_file.c_str());
  Fleet fleet("restart", cache_file);
  fleet.server->start();
  auto client = fleet.client("patient");
  TermGen gen(0x4e57a47);
  Term goal = gen.random_goal(4);
  client->publish_verdict(goal, verdict(42, false), true);

  // Daemon dies (final snapshot lands in its cache file) and comes back.
  fleet.server->stop();
  fleet.server.reset();
  Term during = gen.random_goal(4);
  client->publish_verdict(during, verdict(1), true);  // opens the window
  {
    svc::CacheServerOptions sopts;
    sopts.listen = "unix:" + fleet.sock;
    sopts.shards = 4;
    sopts.cache_file = cache_file;
    fleet.server = std::make_unique<svc::CacheServer>(sopts);
    svc::CacheLoadResult warm = fleet.server->start();
    ASSERT_TRUE(warm.loaded) << warm.note;
    EXPECT_GE(warm.verdicts, 1u);  // the pre-death verdict survived
  }

  // The client probes its way back to healthy once the backoff window
  // closes (fresh goals force wire traffic; fallback hits would not).
  bool recovered = false;
  for (int i = 0; i < 500 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (void)client->lookup_verdict(gen.random_goal(4), nullptr);
    recovered = client->healthy();
  }
  EXPECT_TRUE(recovered) << client->last_error();

  // A brand-new client sees the pre-death verdict via the restarted
  // daemon's warm start: kill/restart kept every verdict sound.
  auto fresh = fleet.client("newcomer");
  auto found = fresh->lookup_verdict(goal, nullptr);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->iterations, 42);
  EXPECT_FALSE(found->equivalent);
}

TEST(RemoteBackend, DeadDaemonAtConstructionDegradesImmediately) {
  // No daemon ever listened here: the constructor's probe must classify
  // this instantly (RETRY_LATER semantics) instead of failing the first
  // real obligation.
  auto backend = std::make_unique<svc::RemoteBackend>(
      remote_opts("unix:" + temp_path("never_started.sock")));
  EXPECT_FALSE(backend->healthy());
  EXPECT_GE(backend->stats().remote_failures, 1u);
  // And it is still a fully functional (local) backend.
  TermGen gen(0x0ff);
  Term goal = gen.random_goal(4);
  EXPECT_TRUE(backend->publish_theorem(goal, Thm::refl(goal)).second);
  EXPECT_TRUE(backend->lookup_theorem(goal, nullptr).has_value());
}

TEST(RemoteBackend, PersistUnionsLocalFallbackWithDaemonSnapshot) {
  Fleet fleet("snapunion");
  fleet.server->start();
  auto a = fleet.client("writer-a");
  auto b = fleet.client("writer-b");
  TermGen gen(0x0410);
  Term only_a = gen.random_goal(4);
  Term only_b = gen.random_goal(4);
  a->publish_theorem(only_a, Thm::refl(only_a));
  b->publish_theorem(only_b, Thm::refl(only_b));

  // Client A persists: its own fallback has only_a, the daemon snapshot
  // contributes only_b — the file must hold the union.
  std::string path = temp_path("snapunion.cache");
  std::remove(path.c_str());
  a->persist(path);

  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  svc::CacheLoadResult r = svc::PersistentCacheFile(path).load(thms, verdicts);
  ASSERT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(thms.stats().entries, 2u);
  EXPECT_TRUE(thms.find(only_a).has_value());
  EXPECT_TRUE(thms.find(only_b).has_value());
}

// --- Batched frames and version negotiation ----------------------------------

namespace {

std::vector<Term> distinct_goals(TermGen& gen, std::size_t n, int size = 4) {
  std::vector<Term> keys;
  while (keys.size() < n) {
    Term t = gen.random_goal(size);
    bool dup = false;
    for (const Term& s : keys) {
      if (s == t) {
        dup = true;
        break;
      }
    }
    if (!dup) keys.push_back(t);
  }
  return keys;
}

}  // namespace

TEST(RemoteBackend, BatchedSweepIsOneFrameEachWayAcrossClients) {
  Fleet fleet("batchrt");
  fleet.server->start();
  auto writer = fleet.client("writer");
  ASSERT_EQ(writer->negotiated_version(), 2);
  TermGen gen(0xf4a3e5);
  std::vector<Term> keys = distinct_goals(gen, 8);

  // 8 fresh verdicts leave in ONE PublishBatch frame.
  std::uint64_t rt0 = writer->stats().remote_round_trips;
  std::vector<svc::VerdictPublish> pubs;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    pubs.push_back({keys[i], verdict(200 + static_cast<int>(i)), true});
  }
  writer->publish_verdicts(pubs);
  svc::BackendStats ws = writer->stats();
  EXPECT_EQ(ws.remote_round_trips, rt0 + 1);
  EXPECT_EQ(ws.verdicts.misses, 8u);

  // A second client's batched lookup of the same keys is ONE LookupBatch
  // frame, and the 1-miss/k-1-hit accounting holds across the fleet: the
  // writer took the 8 misses, the reader gets 8 pure hits.
  auto reader = fleet.client("reader");
  std::uint64_t rt1 = reader->stats().remote_round_trips;
  std::vector<std::uint8_t> hits;
  std::vector<std::optional<VerifyResult>> found =
      reader->lookup_verdicts(keys, &hits);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i].has_value()) << i;
    EXPECT_EQ(found[i]->iterations, 200 + static_cast<int>(i));
    EXPECT_EQ(hits[i], 1) << i;
  }
  svc::BackendStats rs = reader->stats();
  EXPECT_EQ(rs.remote_round_trips, rt1 + 1);
  EXPECT_EQ(rs.verdicts.hits, 8u);
  EXPECT_EQ(rs.verdicts.misses, 0u);

  svc::CacheServerStats ds = fleet.server->stats();
  EXPECT_GE(ds.batch_frames, 2u);
  EXPECT_EQ(ds.verdict_entries, 8u);
}

TEST(RemoteBackend, V2ClientAgainstV1DaemonFallsBackPerEntry) {
  // A daemon pinned at protocol v1 never advertises a max version on
  // Ping; the v2 client must notice and stay per-entry — same verdicts,
  // same accounting, zero batch frames on the wire.
  std::string sock = temp_path("skew_v1d.sock");
  std::remove(sock.c_str());
  svc::CacheServerOptions sopts;
  sopts.listen = "unix:" + sock;
  sopts.shards = 4;
  sopts.max_proto_version = 1;
  svc::CacheServer server(sopts);
  server.start();
  {
    auto client = std::make_unique<svc::RemoteBackend>(
        remote_opts(sopts.listen, "modern"));
    EXPECT_EQ(client->negotiated_version(), 1);
    TermGen gen(0x5e1);
    std::vector<Term> keys = distinct_goals(gen, 5);
    std::vector<svc::VerdictPublish> pubs;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      pubs.push_back({keys[i], verdict(10 + static_cast<int>(i)), true});
    }
    client->publish_verdicts(pubs);
    std::vector<std::uint8_t> hits;
    auto found = client->lookup_verdicts(keys, &hits);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(found[i].has_value()) << i;
      EXPECT_EQ(hits[i], 1) << i;
    }
    svc::BackendStats st = client->stats();
    EXPECT_EQ(st.verdicts.misses, 5u);
    EXPECT_EQ(st.verdicts.hits, 5u);
    EXPECT_EQ(st.remote_failures, 0u);
    // And a different v1-pinned client still shares the entries.
    svc::RemoteBackendOptions old_opts =
        remote_opts(sopts.listen, "legacy");
    old_opts.max_proto_version = 1;
    auto old_client = std::make_unique<svc::RemoteBackend>(old_opts);
    EXPECT_EQ(old_client->negotiated_version(), 1);
    auto got = old_client->lookup_verdict(keys[0], nullptr);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->iterations, 10);
  }
  svc::CacheServerStats ds = server.stats();
  EXPECT_EQ(ds.batch_frames, 0u);
  server.stop();
}

TEST(RemoteBackend, V1ClientAgainstV2DaemonStaysPerEntryAndShares) {
  // The mirror skew: an old client (max version pinned to 1) against a
  // current daemon.  Its per-entry frames are wire-identical to v1, so
  // everything works — and a v2 client sees its entries.
  Fleet fleet("skew_v1c");
  fleet.server->start();
  svc::RemoteBackendOptions old_opts =
      remote_opts("unix:" + fleet.sock, "legacy");
  old_opts.max_proto_version = 1;
  auto old_client = std::make_unique<svc::RemoteBackend>(old_opts);
  EXPECT_EQ(old_client->negotiated_version(), 1);
  TermGen gen(0x5e2);
  Term key = gen.random_goal(4);
  old_client->publish_verdict(key, verdict(77, false), true);

  auto modern = fleet.client("modern");
  EXPECT_EQ(modern->negotiated_version(), 2);
  std::vector<std::uint8_t> hits;
  auto found = modern->lookup_verdicts({key}, &hits);
  ASSERT_TRUE(found[0].has_value());
  EXPECT_EQ(found[0]->iterations, 77);
  EXPECT_FALSE(found[0]->equivalent);
  EXPECT_EQ(fleet.server->stats().batch_frames, 1u);  // the lookup only
}

// --- Transport bugfixes: mid-frame stalls, handler reaping, stale sockets ----

TEST(RemoteBackend, MidFrameStallForcesReconnectWithSoundVerdicts) {
  Fleet fleet("stall");
  fleet.server->start();
  // pool=1 pins every exchange to the one socket the stall wedges.
  auto client = fleet.client("staller", /*pool=*/1);
  TermGen gen(0x57a11);
  Term before = gen.random_goal(4);
  client->publish_verdict(before, verdict(5, false), true);
  ASSERT_TRUE(client->healthy());

  // Wedge the next exchange mid-frame: header plus half the payload,
  // then nothing.  The client must classify it as a transport failure
  // and close the socket — NEVER leave the desynchronized stream around
  // for the next request to read garbage from.
  svc::FaultInjector::instance().configure(
      "seed=7,rate=1.0,sites=remote_stall");
  Term wedged = gen.random_goal(4);
  auto [v, inserted] = client->publish_verdict(wedged, verdict(6), true);
  EXPECT_TRUE(inserted);  // the local fallback still took it
  EXPECT_EQ(
      svc::FaultInjector::instance().injected(svc::kFaultRemoteStall), 1u);
  svc::BackendStats st = client->stats();
  EXPECT_GE(st.remote_failures, 1u);
  EXPECT_FALSE(client->healthy());
  svc::FaultInjector::instance().reset();

  // Recovery runs on a FRESH connection (the wedged fd is gone), and the
  // next exchanges return sound verdicts: a second client's entry comes
  // over the wire exactly as published.
  auto other = fleet.client("witness");
  Term shared = gen.random_goal(4);
  other->publish_verdict(shared, verdict(99, false), true);
  bool recovered = false;
  for (int i = 0; i < 500 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (void)client->lookup_verdict(gen.random_goal(4), nullptr);
    recovered = client->healthy();
  }
  ASSERT_TRUE(recovered) << client->last_error();
  auto got = client->lookup_verdict(shared, nullptr);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->iterations, 99);
  EXPECT_FALSE(got->equivalent);
}

TEST(CacheServer, ReapsFinishedHandlersAcrossManyShortConnections) {
  // The accept loop must reap finished connection handlers as it goes: a
  // daemon fronting short-lived clients must not accumulate one dead
  // joinable thread per connection.
  Fleet fleet("soak");
  fleet.server->start();
  svc::RemoteAddress addr = svc::parse_remote_address("unix:" + fleet.sock);
  for (int i = 0; i < 200; ++i) {
    int fd = svc::connect_remote(addr, 1000, 2000);
    ASSERT_GE(fd, 0) << "connect " << i;
    eda::kernel::Encoder enc;
    enc.u32(1);
    enc.u8(static_cast<std::uint8_t>(svc::RemoteOp::Ping));
    enc.str("soak");
    std::string reply;
    ASSERT_TRUE(svc::write_frame(fd, enc.finish())) << i;
    ASSERT_TRUE(svc::read_frame(fd, reply, svc::kMaxResponseFrame)) << i;
    ::close(fd);
    // Mid-soak the live-handler count must stay bounded by the reap
    // cadence, nowhere near the number of connections served.
    EXPECT_LT(fleet.server->stats().live_handlers, 64u) << "at " << i;
  }
  // Once the churn stops, the population drains to (near) zero.
  std::size_t live = 999;
  for (int i = 0; i < 250; ++i) {
    live = fleet.server->stats().live_handlers;
    if (live <= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LE(live, 1u);
  EXPECT_GE(fleet.server->stats().connections, 200u);
}

TEST(CacheServer, RebindsAStaleSocketLeftByUncleanDeath) {
  // SIGKILL leaves the socket file behind.  The next boot must probe it,
  // find nothing listening, unlink, and bind — not die with EADDRINUSE.
  std::string sock = temp_path("stale_boot.sock");
  std::remove(sock.c_str());
  {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::snprintf(sa.sun_path, sizeof sa.sun_path, "%s", sock.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa), 0);
    ::close(fd);  // no unlink: the stale file survives, nothing listens
  }
  svc::CacheServerOptions sopts;
  sopts.listen = "unix:" + sock;
  sopts.shards = 2;
  svc::CacheServer server(sopts);
  server.start();  // must not throw
  auto client = std::make_unique<svc::RemoteBackend>(
      remote_opts(sopts.listen, "reborn"));
  EXPECT_TRUE(client->healthy());
  client.reset();
  server.stop();
}

TEST(CacheServer, RefusesToStealALiveDaemonsSocket) {
  Fleet fleet("occupied");
  fleet.server->start();
  svc::CacheServerOptions sopts;
  sopts.listen = "unix:" + fleet.sock;
  sopts.shards = 2;
  svc::CacheServer usurper(sopts);
  EXPECT_THROW(usurper.start(), svc::RemoteCacheError);
  // And the incumbent still serves.
  auto client = fleet.client("loyal");
  EXPECT_TRUE(client->healthy());
}
