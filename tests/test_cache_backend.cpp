// Conformance battery for the CacheBackend seam (service/cache_backend.h):
// every backend — in-process, file-bound, remote (eda_cached client) — must
// carry the GoalCache accounting contract verbatim (1 miss + k-1 hits per
// goal, no matter the interleaving or where the entry was found), share
// entries across alpha-equivalent spellings, cold-start cleanly on schema
// skew and union entries on persist.  The remote-only section embeds a
// CacheServer so daemon kill/restart is deterministic: a dead daemon must
// never lose a verdict or produce a wrong one, only degrade.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "kernel/shard.h"
#include "kernel/terms.h"
#include "kernel/thm.h"
#include "service/cache_backend.h"
#include "service/cache_file.h"
#include "service/cache_server.h"
#include "service/remote_backend.h"
#include "testlib/gen.h"

namespace k = eda::kernel;
namespace svc = eda::service;
using eda::testlib::TermGen;
using eda::verify::VerifyResult;
using k::Term;
using k::Thm;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

VerifyResult verdict(int iterations, bool equivalent = true) {
  VerifyResult v;
  v.completed = true;
  v.equivalent = equivalent;
  v.iterations = iterations;
  v.seconds = 0.125 * iterations;
  v.peak = static_cast<std::size_t>(100 + iterations);
  return v;
}

/// One backend under test plus whatever keeps it alive (the embedded
/// daemon for the remote case, the bound file path for the file case).
struct Rig {
  std::unique_ptr<svc::CacheServer> server;  // remote only
  std::unique_ptr<svc::CacheBackend> backend;
  std::string file;  // file only

  ~Rig() {
    backend.reset();  // client closes its socket before the daemon dies
    if (server) server->stop();
  }
};

svc::RemoteBackendOptions remote_opts(const std::string& server,
                                      const std::string& tenant = "test") {
  svc::RemoteBackendOptions o;
  o.server = server;
  o.tenant = tenant;
  // Keep the degradation window short so kill/restart tests converge in
  // milliseconds, not the production seconds.
  o.backoff_ms = 1.0;
  o.backoff_cap_ms = 50.0;
  return o;
}

std::unique_ptr<Rig> make_rig(const std::string& kind,
                              const std::string& tag) {
  auto rig = std::make_unique<Rig>();
  if (kind == "in-process") {
    rig->backend = std::make_unique<svc::InProcessBackend>();
  } else if (kind == "file") {
    rig->file = temp_path("backend_" + tag + ".cache");
    std::remove(rig->file.c_str());
    rig->backend = std::make_unique<svc::FileBackend>(rig->file);
  } else {
    std::string sock = temp_path("cached_" + tag + ".sock");
    std::remove(sock.c_str());
    svc::CacheServerOptions sopts;
    sopts.listen = "unix:" + sock;
    sopts.shards = 4;
    rig->server = std::make_unique<svc::CacheServer>(sopts);
    rig->server->start();
    rig->backend =
        std::make_unique<svc::RemoteBackend>(remote_opts(sopts.listen));
  }
  return rig;
}

class BackendConformance : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Rig> rig_;
  svc::CacheBackend& backend() { return *rig_->backend; }

  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string tag = std::string(GetParam()) + "_" + info->name();
    for (char& c : tag) {
      if (c == '/' || c == '-') c = '_';
    }
    rig_ = make_rig(GetParam(), tag);
  }
};

}  // namespace

// --- The accounting contract ------------------------------------------------

TEST_P(BackendConformance, KSubmissionsYieldOneMissAndKMinusOneHits) {
  svc::CacheBackend& b = backend();
  TermGen gen(0xacc7);
  Term goal = gen.random_goal(4);

  // Absent lookup counts NOTHING (the miss lands on the paired publish).
  bool was_hit = true;
  EXPECT_FALSE(b.lookup_theorem(goal, &was_hit).has_value());
  EXPECT_FALSE(was_hit);
  EXPECT_EQ(b.stats().theorems.hits, 0u);
  EXPECT_EQ(b.stats().theorems.misses, 0u);

  // The insert is the miss.
  auto [canonical, inserted] = b.publish_theorem(goal, Thm::refl(goal));
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(canonical.concl() == k::mk_eq(goal, goal));
  EXPECT_EQ(b.stats().theorems.misses, 1u);
  EXPECT_EQ(b.stats().theorems.hits, 0u);

  // Present lookups are hits; a redundant publish loses the "race" and is
  // a hit too.  4 submissions total: exactly 1 miss + 3 hits.
  EXPECT_TRUE(b.lookup_theorem(goal, &was_hit).has_value());
  EXPECT_TRUE(was_hit);
  EXPECT_TRUE(b.lookup_theorem(goal).has_value());
  auto [again, reinserted] = b.publish_theorem(goal, Thm::refl(goal));
  EXPECT_FALSE(reinserted);
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.theorems.misses, 1u);
  EXPECT_EQ(st.theorems.hits, 3u);
  EXPECT_EQ(st.theorems.entries, 1u);
}

TEST_P(BackendConformance, GetOrProveComposesWithoutDoubleCounting) {
  svc::CacheBackend& b = backend();
  TermGen gen(0x90f);
  Term goal = gen.random_goal(4);
  int proofs = 0;
  bool was_hit = true;
  Thm t1 = b.get_or_prove_theorem(
      goal,
      [&] {
        ++proofs;
        return Thm::refl(goal);
      },
      &was_hit);
  EXPECT_EQ(proofs, 1);
  EXPECT_FALSE(was_hit);
  Thm t2 = b.get_or_prove_theorem(
      goal,
      [&] {
        ++proofs;
        return Thm::refl(goal);
      },
      &was_hit);
  EXPECT_EQ(proofs, 1);  // served from the cache, not re-proved
  EXPECT_TRUE(was_hit);
  EXPECT_TRUE(t1.concl() == t2.concl());
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.theorems.misses, 1u);
  EXPECT_EQ(st.theorems.hits, 1u);
}

TEST_P(BackendConformance, VerdictContractMatchesTheoremContract) {
  svc::CacheBackend& b = backend();
  TermGen gen(0x7e5d);
  Term key = gen.random_goal(4);
  int proofs = 0;
  VerifyResult r1 = b.get_or_prove_verdict(
      key,
      [&] {
        ++proofs;
        return verdict(7);
      },
      [](const VerifyResult& v) { return v.completed; });
  VerifyResult r2 = b.get_or_prove_verdict(
      key,
      [&] {
        ++proofs;
        return verdict(999);  // must never be seen: the cache serves 7
      },
      [](const VerifyResult& v) { return v.completed; });
  EXPECT_EQ(proofs, 1);
  EXPECT_EQ(r1.iterations, 7);
  EXPECT_EQ(r2.iterations, 7);
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.verdicts.misses, 1u);
  EXPECT_EQ(st.verdicts.hits, 1u);
  EXPECT_EQ(st.verdicts.entries, 1u);
}

TEST_P(BackendConformance, UncacheableVerdictCountsMissWithoutInserting) {
  svc::CacheBackend& b = backend();
  TermGen gen(0xbad);
  Term key = gen.random_goal(4);
  VerifyResult blown;  // budget-blown: describes the machine, not the goal
  blown.completed = false;
  auto [returned, inserted] = b.publish_verdict(key, blown, false);
  EXPECT_FALSE(inserted);
  EXPECT_FALSE(returned.completed);
  EXPECT_EQ(b.stats().verdicts.misses, 1u);
  EXPECT_EQ(b.stats().verdicts.entries, 0u);
  // The key stays provable: the next submission is a fresh miss, not a
  // poisoned hit.
  EXPECT_FALSE(b.lookup_verdict(key).has_value());
}

// --- Alpha classes ------------------------------------------------------------

TEST_P(BackendConformance, AlphaEquivalentSpellingsShareOneEntry) {
  svc::CacheBackend& b = backend();
  // Same seed, different binder salts: pairwise alpha-equivalent goals
  // spelt differently (the test_serialize idiom).
  TermGen gen_u(0xa1fa, "u");
  TermGen gen_v(0xa1fa, "v");
  std::vector<Term> seen;  // the generator repeats goals; dedupe them
  int abs_pairs = 0, distinct = 0;
  for (int i = 0; i < 40; ++i) {
    Term a = gen_u.random_goal(3 + i % 5);
    Term bterm = gen_v.random_goal(3 + i % 5);
    ASSERT_TRUE(a == bterm) << "salt variants must be alpha-equal at " << i;
    bool dup = false;
    for (const Term& s : seen) {
      if (s == a) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    seen.push_back(a);
    if (!a.identical(bterm)) ++abs_pairs;
    b.publish_verdict(a, verdict(100 + distinct), true);
    bool was_hit = false;
    auto found = b.lookup_verdict(bterm, &was_hit);
    ASSERT_TRUE(found.has_value()) << "spelling v missed at " << i;
    EXPECT_TRUE(was_hit);
    EXPECT_EQ(found->iterations, 100 + distinct);
    ++distinct;
  }
  EXPECT_GT(abs_pairs, 3);  // the generator must exercise abstractions
  auto n = static_cast<std::uint64_t>(distinct);
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.verdicts.misses, n);
  EXPECT_EQ(st.verdicts.hits, n);
  EXPECT_EQ(st.verdicts.entries, n);
}

// --- Warm start / persist ----------------------------------------------------

TEST_P(BackendConformance, SchemaSkewIsADiagnosedColdStart) {
  svc::CacheBackend& b = backend();
  // A future-schema file: valid container, bumped schema field.
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  TermGen gen(0x5c4e);
  Term goal = gen.random_goal(4);
  thms.emplace(goal, Thm::refl(goal));
  std::string bytes = svc::PersistentCacheFile::encode(thms, verdicts);
  ASSERT_GT(bytes.size(), 8u);
  bytes[4] = static_cast<char>(bytes[4] + 1);  // header version field
  std::string path = temp_path("skewed_backend.cache");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  svc::CacheLoadResult r = b.warm_start(path);
  EXPECT_FALSE(r.loaded);
  EXPECT_NE(r.note.find("version"), std::string::npos);
  EXPECT_EQ(r.theorems, 0u);
  EXPECT_EQ(b.stats().theorems.entries, 0u);
  // And the backend stays fully usable after the cold start.
  auto [canonical, inserted] = b.publish_theorem(goal, Thm::refl(goal));
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(b.lookup_theorem(goal).has_value());
}

TEST_P(BackendConformance, WarmStartBypassesTheHitMissCounters) {
  // Warm-start admission is provenance, not workload: a loaded entry must
  // not inflate the hit rate before any obligation was served.
  std::string path = temp_path("warm_counters.cache");
  std::remove(path.c_str());
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  TermGen gen(0x3a3);
  Term goal = gen.random_goal(4);
  thms.emplace(goal, Thm::refl(goal));
  verdicts.emplace(k::mk_eq(goal, goal), verdict(3));
  svc::PersistentCacheFile(path).save(thms, verdicts);

  svc::CacheBackend& b = backend();
  svc::CacheLoadResult r = b.warm_start(path);
  ASSERT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(r.theorems, 1u);
  EXPECT_EQ(r.verdicts, 1u);
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.theorems.hits + st.theorems.misses, 0u);
  EXPECT_EQ(st.verdicts.hits + st.verdicts.misses, 0u);
  // The first real submission of a warm goal is a HIT — that is the whole
  // point of warm starting.
  EXPECT_TRUE(b.lookup_theorem(goal).has_value());
  EXPECT_EQ(b.stats().theorems.hits, 1u);
}

TEST_P(BackendConformance, PersistMergesWithEntriesAlreadyOnDisk) {
  std::string path = temp_path("merge_backend.cache");
  std::remove(path.c_str());
  TermGen gen(0x6e6);
  std::vector<Term> goals;
  for (int i = 0; i < 8; ++i) goals.push_back(gen.random_goal(4));

  // Another process already persisted the first half.
  {
    svc::TheoremCache thms;
    svc::VerdictCache verdicts;
    for (int i = 0; i < 4; ++i) thms.emplace(goals[i], Thm::refl(goals[i]));
    svc::PersistentCacheFile(path).save(thms, verdicts);
  }
  // This backend only ever saw the second half.
  svc::CacheBackend& b = backend();
  for (int i = 4; i < 8; ++i) b.publish_theorem(goals[i], Thm::refl(goals[i]));
  b.persist(path);

  // Union semantics: every key survives the save race.
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  svc::CacheLoadResult r = svc::PersistentCacheFile(path).load(thms, verdicts);
  ASSERT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(thms.stats().entries, 8u);
  for (const Term& g : goals) EXPECT_TRUE(thms.find(g).has_value());
}

// --- Concurrency ---------------------------------------------------------------

TEST_P(BackendConformance, ConcurrentPublishKeepsTheContract) {
  svc::CacheBackend& b = backend();
  TermGen gen(0xc0c);
  Term key = gen.random_goal(4);
  constexpr int kThreads = 4;
  std::atomic<int> inserted_count{0};
  std::vector<int> canonical_iters(kThreads, -1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto [canonical, inserted] = b.publish_verdict(key, verdict(t), true);
      if (inserted) inserted_count.fetch_add(1);
      canonical_iters[static_cast<std::size_t>(t)] = canonical.iterations;
    });
  }
  for (std::thread& th : threads) th.join();

  // Exactly one publisher won; everyone holds the winner's verdict.
  EXPECT_EQ(inserted_count.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(canonical_iters[static_cast<std::size_t>(t)],
              canonical_iters[0]);
  }
  svc::BackendStats st = b.stats();
  EXPECT_EQ(st.verdicts.misses, 1u);
  EXPECT_EQ(st.verdicts.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(st.verdicts.entries, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values("in-process", "file", "remote"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --- Shard selection (the ROADMAP `h % kShards` trap) -----------------------

TEST(ShardMixer, EntropyPoorHashesStillSpread) {
  // Arena-aligned / structurally built hashes keep their entropy in the
  // low-middle bits; here every sample has 6 dead low bits.  The naive
  // selector collapses ALL of them into shard 0 — the exact trap — while
  // the multiply-mixer spreads them across every shard.
  std::set<std::size_t> mixed, naive;
  for (std::size_t i = 1; i <= 256; ++i) {
    std::size_t h = i * 64;
    mixed.insert(k::shard_index_of(h, 8));
    naive.insert(h % 8);
  }
  EXPECT_EQ(naive.size(), 1u);  // the trap, demonstrated
  EXPECT_EQ(mixed.size(), 8u);  // the fix, demonstrated
}

TEST(ShardMixer, RealAlphaHashesSpreadAcrossDaemonShards) {
  // The daemon's selector input is Term::hash() — check the distribution
  // it will actually see, at the daemon's default shard count.
  TermGen gen(0xd15c);
  std::vector<std::size_t> counts(8, 0);
  for (int i = 0; i < 400; ++i) {
    ++counts[k::shard_index_of(gen.random_goal(3 + i % 5).hash(), 8)];
  }
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_GT(counts[s], 10u) << "shard " << s << " starved";
  }
}

// --- Remote-specific: the shared tier and the failure story ------------------

namespace {

/// A daemon on a fresh unix socket plus N clients against it.
struct Fleet {
  std::string sock;
  std::unique_ptr<svc::CacheServer> server;

  explicit Fleet(const std::string& tag, std::string cache_file = "") {
    sock = temp_path("fleet_" + tag + ".sock");
    std::remove(sock.c_str());
    svc::CacheServerOptions sopts;
    sopts.listen = "unix:" + sock;
    sopts.shards = 4;
    sopts.cache_file = std::move(cache_file);
    server = std::make_unique<svc::CacheServer>(sopts);
  }

  std::unique_ptr<svc::RemoteBackend> client(const std::string& tenant) {
    return std::make_unique<svc::RemoteBackend>(
        remote_opts("unix:" + sock, tenant));
  }

  ~Fleet() {
    if (server) server->stop();
  }
};

}  // namespace

TEST(RemoteBackend, TwoClientsShareAlphaEquivalentEntriesThroughTheDaemon) {
  Fleet fleet("share");
  fleet.server->start();
  auto a = fleet.client("tenant-a");
  auto b = fleet.client("tenant-b");

  // Client A proves under one spelling; client B must hit under the other
  // — the daemon re-interns request terms, so the key is the alpha class,
  // not the wire bytes.
  TermGen gen_u(0x5a5a, "u");
  TermGen gen_v(0x5a5a, "v");
  std::vector<Term> seen;  // the generator repeats goals; dedupe them
  int distinct = 0;
  for (int i = 0; i < 10; ++i) {
    Term spelt_u = gen_u.random_goal(3 + i % 5);
    Term spelt_v = gen_v.random_goal(3 + i % 5);
    ASSERT_TRUE(spelt_u == spelt_v);
    bool dup = false;
    for (const Term& s : seen) {
      if (s == spelt_u) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    seen.push_back(spelt_u);
    a->publish_verdict(spelt_u, verdict(100 + distinct, distinct % 2 == 0),
                       true);
    bool was_hit = false;
    auto found = b->lookup_verdict(spelt_v, &was_hit);
    ASSERT_TRUE(found.has_value()) << "client B missed at " << i;
    EXPECT_TRUE(was_hit);
    EXPECT_EQ(found->iterations, 100 + distinct);
    EXPECT_EQ(found->equivalent, distinct % 2 == 0);
    ++distinct;
  }
  ASSERT_GT(distinct, 3);
  auto n = static_cast<std::uint64_t>(distinct);
  // B's obligations were all served by A's proofs: pure hits.
  svc::BackendStats bs = b->stats();
  EXPECT_EQ(bs.verdicts.hits, n);
  EXPECT_EQ(bs.verdicts.misses, 0u);
  EXPECT_EQ(bs.remote_failures, 0u);
  // The daemon saw both tenants.
  svc::CacheServerStats ds = fleet.server->stats();
  EXPECT_EQ(ds.tenants, 2u);
  EXPECT_EQ(ds.verdict_entries, n);
  EXPECT_GE(ds.lookup_hits, n);
}

TEST(RemoteBackend, DaemonDeathDegradesWithoutLosingOrCorruptingVerdicts) {
  Fleet fleet("kill");
  fleet.server->start();
  auto client = fleet.client("survivor");
  TermGen gen(0xdead);
  Term proved_before = gen.random_goal(4);
  client->publish_verdict(proved_before, verdict(11, false), true);
  ASSERT_TRUE(client->healthy());

  // Kill the daemon mid-use.
  fleet.server->stop();
  fleet.server.reset();

  // Everything proved before the death is still served, with the exact
  // same verdict (the fallback holds it; no wire round-trip involved).
  auto still = client->lookup_verdict(proved_before, nullptr);
  ASSERT_TRUE(still.has_value());
  EXPECT_EQ(still->iterations, 11);
  EXPECT_FALSE(still->equivalent);

  // New obligations keep working: the first one eats the transport error
  // (remote_failures), later ones ride the degradation window
  // (degraded_ops) and are served locally.  No exception ever escapes.
  Term proved_after = gen.random_goal(4);
  auto [canonical, inserted] =
      client->publish_verdict(proved_after, verdict(22), true);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(canonical.iterations, 22);
  for (int i = 0; i < 5; ++i) {
    Term fresh = gen.random_goal(4);
    client->publish_theorem(fresh, Thm::refl(fresh));
    EXPECT_TRUE(client->lookup_theorem(fresh, nullptr).has_value());
  }
  svc::BackendStats st = client->stats();
  EXPECT_GE(st.remote_failures, 1u);
  EXPECT_GE(st.degraded_ops, 1u);
  EXPECT_FALSE(client->healthy());
  EXPECT_FALSE(client->last_error().empty());
  // The accounting contract survived the outage: every publish above was
  // a first submission (miss), every lookup a hit.
  EXPECT_EQ(st.verdicts.misses, 2u);
  EXPECT_EQ(st.theorems.misses, 5u);
  EXPECT_EQ(st.theorems.hits, 5u);
}

TEST(RemoteBackend, ClientReconnectsAfterDaemonRestart) {
  std::string cache_file = temp_path("restart_daemon.cache");
  std::remove(cache_file.c_str());
  Fleet fleet("restart", cache_file);
  fleet.server->start();
  auto client = fleet.client("patient");
  TermGen gen(0x4e57a47);
  Term goal = gen.random_goal(4);
  client->publish_verdict(goal, verdict(42, false), true);

  // Daemon dies (final snapshot lands in its cache file) and comes back.
  fleet.server->stop();
  fleet.server.reset();
  Term during = gen.random_goal(4);
  client->publish_verdict(during, verdict(1), true);  // opens the window
  {
    svc::CacheServerOptions sopts;
    sopts.listen = "unix:" + fleet.sock;
    sopts.shards = 4;
    sopts.cache_file = cache_file;
    fleet.server = std::make_unique<svc::CacheServer>(sopts);
    svc::CacheLoadResult warm = fleet.server->start();
    ASSERT_TRUE(warm.loaded) << warm.note;
    EXPECT_GE(warm.verdicts, 1u);  // the pre-death verdict survived
  }

  // The client probes its way back to healthy once the backoff window
  // closes (fresh goals force wire traffic; fallback hits would not).
  bool recovered = false;
  for (int i = 0; i < 500 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (void)client->lookup_verdict(gen.random_goal(4), nullptr);
    recovered = client->healthy();
  }
  EXPECT_TRUE(recovered) << client->last_error();

  // A brand-new client sees the pre-death verdict via the restarted
  // daemon's warm start: kill/restart kept every verdict sound.
  auto fresh = fleet.client("newcomer");
  auto found = fresh->lookup_verdict(goal, nullptr);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->iterations, 42);
  EXPECT_FALSE(found->equivalent);
}

TEST(RemoteBackend, DeadDaemonAtConstructionDegradesImmediately) {
  // No daemon ever listened here: the constructor's probe must classify
  // this instantly (RETRY_LATER semantics) instead of failing the first
  // real obligation.
  auto backend = std::make_unique<svc::RemoteBackend>(
      remote_opts("unix:" + temp_path("never_started.sock")));
  EXPECT_FALSE(backend->healthy());
  EXPECT_GE(backend->stats().remote_failures, 1u);
  // And it is still a fully functional (local) backend.
  TermGen gen(0x0ff);
  Term goal = gen.random_goal(4);
  EXPECT_TRUE(backend->publish_theorem(goal, Thm::refl(goal)).second);
  EXPECT_TRUE(backend->lookup_theorem(goal, nullptr).has_value());
}

TEST(RemoteBackend, PersistUnionsLocalFallbackWithDaemonSnapshot) {
  Fleet fleet("snapunion");
  fleet.server->start();
  auto a = fleet.client("writer-a");
  auto b = fleet.client("writer-b");
  TermGen gen(0x0410);
  Term only_a = gen.random_goal(4);
  Term only_b = gen.random_goal(4);
  a->publish_theorem(only_a, Thm::refl(only_a));
  b->publish_theorem(only_b, Thm::refl(only_b));

  // Client A persists: its own fallback has only_a, the daemon snapshot
  // contributes only_b — the file must hold the union.
  std::string path = temp_path("snapunion.cache");
  std::remove(path.c_str());
  a->persist(path);

  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  svc::CacheLoadResult r = svc::PersistentCacheFile(path).load(thms, verdicts);
  ASSERT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(thms.stats().entries, 2u);
  EXPECT_TRUE(thms.find(only_a).has_value());
  EXPECT_TRUE(thms.find(only_b).has_value());
}
