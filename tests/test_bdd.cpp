// Tests for the BDD package, with property checks against brute-force
// truth-table evaluation.

#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.h"

namespace b = eda::bdd;
using b::BddId;
using b::BddManager;

TEST(Bdd, Terminals) {
  BddManager m(4);
  EXPECT_EQ(m.false_bdd(), 0);
  EXPECT_EQ(m.true_bdd(), 1);
  EXPECT_EQ(m.lnot(m.false_bdd()), m.true_bdd());
}

TEST(Bdd, VarAndEval) {
  BddManager m(3);
  BddId x0 = m.var(0), x2 = m.var(2);
  BddId f = m.land(x0, m.lnot(x2));
  EXPECT_TRUE(m.eval(f, {true, false, false}));
  EXPECT_FALSE(m.eval(f, {true, false, true}));
  EXPECT_FALSE(m.eval(f, {false, false, false}));
}

TEST(Bdd, Canonicity) {
  BddManager m(3);
  // (x0 /\ x1) \/ (x0 /\ ~x1)  ==  x0
  BddId f = m.lor(m.land(m.var(0), m.var(1)),
                  m.land(m.var(0), m.lnot(m.var(1))));
  EXPECT_EQ(f, m.var(0));
  // xor expressed two ways.
  BddId g1 = m.lxor(m.var(0), m.var(1));
  BddId g2 = m.lor(m.land(m.var(0), m.lnot(m.var(1))),
                   m.land(m.lnot(m.var(0)), m.var(1)));
  EXPECT_EQ(g1, g2);
}

TEST(Bdd, Exists) {
  BddManager m(3);
  BddId f = m.land(m.var(0), m.var(1));
  BddId ex = m.exists(f, {1});
  EXPECT_EQ(ex, m.var(0));
  EXPECT_EQ(m.exists(f, {0, 1}), m.true_bdd());
}

TEST(Bdd, AndExistsMatchesComposed) {
  BddManager m(6);
  std::mt19937 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    // Random functions over 6 vars.
    auto random_fn = [&]() {
      BddId f = (rng() & 1) ? m.true_bdd() : m.false_bdd();
      for (int k = 0; k < 6; ++k) {
        BddId v = (rng() & 1) ? m.var(k) : m.nvar(k);
        switch (rng() % 3) {
          case 0: f = m.land(f, v); break;
          case 1: f = m.lor(f, v); break;
          default: f = m.lxor(f, v); break;
        }
      }
      return f;
    };
    BddId f = random_fn(), g = random_fn();
    std::vector<int> q = {1, 3, 5};
    EXPECT_EQ(m.and_exists(f, g, q), m.exists(m.land(f, g), q));
  }
}

TEST(Bdd, RenameAndCompose) {
  BddManager m(4);
  BddId f = m.land(m.var(0), m.var(2));
  BddId g = m.rename(f, {{0, 1}, {2, 3}});
  EXPECT_EQ(g, m.land(m.var(1), m.var(3)));
  // compose x2 := x1 xor x3
  BddId h = m.compose(f, 2, m.lxor(m.var(1), m.var(3)));
  EXPECT_EQ(h, m.land(m.var(0), m.lxor(m.var(1), m.var(3))));
}

TEST(Bdd, Support) {
  BddManager m(5);
  BddId f = m.lor(m.var(1), m.land(m.var(3), m.nvar(4)));
  std::vector<int> s = m.support(f);
  EXPECT_EQ(s, (std::vector<int>{1, 3, 4}));
}

TEST(Bdd, AnySat) {
  BddManager m(4);
  BddId f = m.land(m.nvar(0), m.var(3));
  auto sat = m.any_sat(f);
  EXPECT_TRUE(m.eval(f, sat));
  EXPECT_THROW(m.any_sat(m.false_bdd()), b::BddError);
}

TEST(Bdd, NodeLimitEnforced) {
  BddManager m(40, 200);
  BddId f = m.true_bdd();
  EXPECT_THROW(
      {
        for (int k = 0; k < 20; ++k) {
          f = m.land(f, m.lxor(m.var(k), m.var(k + 20)));
        }
      },
      b::BddError);
}

class BddTruthTable : public ::testing::TestWithParam<int> {};

TEST_P(BddTruthTable, RandomExpressionsMatchTruthTables) {
  int seed = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed));
  const int nv = 5;
  BddManager m(nv);
  // Random expression tree, evaluated both as BDD and directly.
  struct Expr {
    int op;  // 0 var, 1 and, 2 or, 3 xor, 4 not
    int var = 0;
    int a = -1, b = -1;
  };
  std::vector<Expr> exprs;
  for (int k = 0; k < 25; ++k) {
    Expr e;
    if (k < 3 || rng() % 4 == 0) {
      e.op = 0;
      e.var = static_cast<int>(rng() % nv);
    } else {
      e.op = 1 + static_cast<int>(rng() % 4);
      e.a = static_cast<int>(rng() % k);
      e.b = static_cast<int>(rng() % k);
    }
    exprs.push_back(e);
  }
  std::vector<BddId> bdds;
  for (const Expr& e : exprs) {
    switch (e.op) {
      case 0:
        bdds.push_back(m.var(e.var));
        break;
      case 1:
        bdds.push_back(m.land(bdds[static_cast<std::size_t>(e.a)],
                              bdds[static_cast<std::size_t>(e.b)]));
        break;
      case 2:
        bdds.push_back(m.lor(bdds[static_cast<std::size_t>(e.a)],
                             bdds[static_cast<std::size_t>(e.b)]));
        break;
      case 3:
        bdds.push_back(m.lxor(bdds[static_cast<std::size_t>(e.a)],
                              bdds[static_cast<std::size_t>(e.b)]));
        break;
      default:
        bdds.push_back(m.lnot(bdds[static_cast<std::size_t>(e.a)]));
        break;
    }
  }
  std::function<bool(int, const std::vector<bool>&)> direct =
      [&](int k, const std::vector<bool>& env) -> bool {
    const Expr& e = exprs[static_cast<std::size_t>(k)];
    switch (e.op) {
      case 0: return env[static_cast<std::size_t>(e.var)];
      case 1: return direct(e.a, env) && direct(e.b, env);
      case 2: return direct(e.a, env) || direct(e.b, env);
      case 3: return direct(e.a, env) != direct(e.b, env);
      default: return !direct(e.a, env);
    }
  };
  for (unsigned assign = 0; assign < (1u << nv); ++assign) {
    std::vector<bool> env;
    for (int v = 0; v < nv; ++v) env.push_back((assign >> v) & 1);
    for (std::size_t k = 0; k < exprs.size(); ++k) {
      EXPECT_EQ(m.eval(bdds[k], env), direct(static_cast<int>(k), env))
          << "expr " << k << " assign " << assign;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddTruthTable, ::testing::Range(0, 12));
