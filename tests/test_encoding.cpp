// Tests for the state-encoding machinery: the two new universal theorems
// (ENCODING_THM, DEAD_STATE_THM) proved in-kernel by induction over time,
// the retraction prover, and the formal re-encoding steps (register
// permutation and XOR re-coding) built on them.

#include <gtest/gtest.h>

#include "bench_gen/fig2.h"
#include "hash/compound.h"
#include "hash/encode_step.h"
#include "hash/retime_step.h"
#include "logic/bool_thms.h"
#include "theories/encoding_thm.h"

namespace c = eda::circuit;
namespace h = eda::hash;
namespace k = eda::kernel;
namespace l = eda::logic;
namespace thy = eda::thy;
using c::Op;
using c::Rtl;
using c::SignalId;
using k::Term;
using k::Thm;

namespace {

/// Two-register circuit with asymmetric update functions, so that a wrong
/// permutation would be caught by every check downstream:
///   A' = A + i;  B' = B xor i;  y = A | B.
Rtl make_two_reg() {
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId a = rtl.add_reg("A", 4, 3);
  SignalId b = rtl.add_reg("B", 4, 12);
  rtl.set_reg_next(a, rtl.add_op(Op::Add, {a, i}));
  rtl.set_reg_next(b, rtl.add_op(Op::Xor, {b, i}));
  rtl.add_output("y", rtl.add_op(Op::Or, {a, b}));
  rtl.validate();
  return rtl;
}

}  // namespace

TEST(EncodingThm, ProvedPureAndWellShaped) {
  Thm th = thy::encoding_thm();
  EXPECT_TRUE(th.is_pure());
  EXPECT_TRUE(th.hyps().empty());
  auto [vars, body] = l::strip_forall(th.concl());
  ASSERT_EQ(vars.size(), 4u);  // enc dec h q
  auto [ante, conseq] = l::dest_imp(body);
  auto [s, retr] = l::dest_forall(ante);
  EXPECT_TRUE(k::is_eq(retr));
  auto [ivars, eq] = l::strip_forall(conseq);
  EXPECT_EQ(ivars.size(), 2u);  // i t
  EXPECT_TRUE(k::is_eq(eq));
}

TEST(EncodingThm, DeadStateProvedPureAndWellShaped) {
  Thm th = thy::dead_state_thm();
  EXPECT_TRUE(th.is_pure());
  EXPECT_TRUE(th.hyps().empty());
  auto [vars, body] = l::strip_forall(th.concl());
  ASSERT_EQ(vars.size(), 6u);  // h hd q qd i t
  EXPECT_TRUE(k::is_eq(body));
}

TEST(Retraction, IdentityPermutationOnOneRegister) {
  // enc = dec = \s. s at num: trivially a retraction.
  Term sv = Term::var("s", k::num_ty());
  Term idf = Term::abs(sv, sv);
  Thm retr = h::prove_retraction(idf, idf);
  auto [v, eq] = l::dest_forall(retr.concl());
  EXPECT_TRUE(k::eq_rhs(eq) == v);
}

TEST(Retraction, XorMaskCancelsViaAxiom) {
  // enc = dec = \s. BITXOR s 5: the retraction needs BITXOR_CANCEL.
  Thm cancel = h::bitxor_cancel();
  auto [vars, eq] = l::strip_forall(cancel.concl());
  ASSERT_EQ(vars.size(), 2u);
  Rtl rtl = make_two_reg();
  h::FormalEncodeResult res = h::formal_xor_reencode(rtl, {5, 0});
  EXPECT_TRUE(res.retraction.hyps().empty());
}

TEST(FormalPermute, SwapTwoRegisters) {
  Rtl rtl = make_two_reg();
  h::FormalEncodeResult res = h::formal_permute_registers(rtl, {1, 0});
  // Register order swapped in the netlist; graph untouched.
  EXPECT_EQ(res.encoded.node(res.encoded.regs()[0]).name, "B");
  EXPECT_EQ(res.encoded.node(res.encoded.regs()[1]).name, "A");
  EXPECT_EQ(res.encoded.nodes().size(), rtl.nodes().size());
  // The theorem relates the two compiled circuits.
  h::CompiledCircuit orig = h::compile(rtl);
  h::CompiledCircuit enc = h::compile(res.encoded);
  auto [vars, body] = l::strip_forall(res.theorem.concl());
  auto [lf, largs] = k::strip_comb(k::eq_lhs(body));
  auto [rf, rargs] = k::strip_comb(k::eq_rhs(body));
  EXPECT_TRUE(largs[0] == orig.h);
  EXPECT_TRUE(largs[1] == orig.q);
  EXPECT_TRUE(rargs[0] == enc.h);
  EXPECT_TRUE(rargs[1] == enc.q);
  // Permutation never needs the arithmetic oracle: pure pair reasoning.
  EXPECT_TRUE(res.theorem.is_pure());
  EXPECT_TRUE(c::simulation_equivalent(rtl, res.encoded, 300, 11));
}

TEST(FormalPermute, ThreeCycleOnFig2DeepState) {
  // Build a three-register circuit by retiming the deep pipeline twice,
  // then rotate the register bank.
  Rtl rtl;
  SignalId i = rtl.add_input("i", 3);
  SignalId r0 = rtl.add_reg("R0", 3, 1);
  SignalId r1 = rtl.add_reg("R1", 3, 2);
  SignalId r2 = rtl.add_reg("R2", 3, 4);
  rtl.set_reg_next(r0, rtl.add_op(Op::Add, {r0, i}));
  rtl.set_reg_next(r1, r0);
  rtl.set_reg_next(r2, r1);
  rtl.add_output("y", rtl.add_op(Op::Xor, {r2, i}));
  rtl.validate();

  h::FormalEncodeResult res = h::formal_permute_registers(rtl, {1, 2, 0});
  EXPECT_TRUE(res.theorem.is_pure());
  EXPECT_EQ(res.encoded.node(res.encoded.regs()[0]).name, "R2");
  EXPECT_EQ(res.encoded.node(res.encoded.regs()[1]).name, "R0");
  EXPECT_EQ(res.encoded.node(res.encoded.regs()[2]).name, "R1");
  EXPECT_TRUE(c::simulation_equivalent(rtl, res.encoded, 300, 17));
}

TEST(FormalPermute, RejectsNonBijection) {
  Rtl rtl = make_two_reg();
  EXPECT_THROW(h::formal_permute_registers(rtl, {0, 0}), h::EncodeError);
  EXPECT_THROW(h::formal_permute_registers(rtl, {0}), h::EncodeError);
}

TEST(FormalXor, ReencodesInitialValuesAndBehaviour) {
  Rtl rtl = make_two_reg();
  h::FormalEncodeResult res = h::formal_xor_reencode(rtl, {9, 6});
  // Initial values stored encoded.
  EXPECT_EQ(res.encoded.node(res.encoded.regs()[0]).value, 3u ^ 9u);
  EXPECT_EQ(res.encoded.node(res.encoded.regs()[1]).value, 12u ^ 6u);
  // I/O behaviour unchanged.
  EXPECT_TRUE(c::simulation_equivalent(rtl, res.encoded, 300, 23));
  // Theorem oracles: ground arithmetic only.
  for (const std::string& tag : res.theorem.oracles()) {
    EXPECT_EQ(tag, "NUM_COMPUTE");
  }
}

TEST(FormalXor, RejectsOversizedMask) {
  Rtl rtl = make_two_reg();
  EXPECT_THROW(h::formal_xor_reencode(rtl, {16, 0}), h::EncodeError);
}

TEST(SignalEncoding, OutputEncodingThmProvedPure) {
  Thm th = thy::output_encoding_thm();
  EXPECT_TRUE(th.is_pure());
  EXPECT_TRUE(th.hyps().empty());
  auto [vars, body] = l::strip_forall(th.concl());
  ASSERT_EQ(vars.size(), 5u);  // enc h q i t
  EXPECT_TRUE(k::is_eq(body));
}

TEST(SignalEncoding, OutputXorEmitsRecodedStream) {
  Rtl rtl = make_two_reg();
  h::FormalSignalEncodeResult res = h::formal_output_xor(rtl, {9});
  // The theorem's left side is the compiled wrapped netlist; the right
  // side is enc applied to the original automaton.
  h::CompiledCircuit orig = h::compile(rtl);
  h::CompiledCircuit wrap = h::compile(res.encoded);
  auto [vars, body] = l::strip_forall(res.theorem.concl());
  auto [lf, largs] = k::strip_comb(k::eq_lhs(body));
  EXPECT_TRUE(largs[0] == wrap.h);
  // RHS: enc (AUT h q i t).
  Term rhs = k::eq_rhs(body);
  EXPECT_TRUE(rhs.rator() == res.enc_term);
  auto [rf, rargs] = k::strip_comb(rhs.rand());
  EXPECT_TRUE(rargs[0] == orig.h);

  // Behaviour: every output of the wrapped circuit is the original XOR 9.
  c::Simulator sa(rtl), sb(res.encoded);
  sa.reset();
  sb.reset();
  for (int cyc = 0; cyc < 100; ++cyc) {
    std::uint64_t in = static_cast<std::uint64_t>(cyc * 7 + 3) & 15;
    auto oa = sa.step({in});
    auto ob = sb.step({in});
    ASSERT_EQ(oa.size(), 1u);
    EXPECT_EQ(ob[0], oa[0] ^ 9u);
  }
}

TEST(SignalEncoding, RejectsBadMasks) {
  Rtl rtl = make_two_reg();
  EXPECT_THROW(h::formal_output_xor(rtl, {16}), h::EncodeError);
  EXPECT_THROW(h::formal_output_xor(rtl, {1, 2}), h::EncodeError);
}

TEST(Compound, RetimeThenPermuteThenXor) {
  // The paper's combinability argument across *different* step kinds:
  // retiming, then a layout re-encoding, then a value re-encoding, glued
  // by the transitivity rule into one correctness theorem.
  auto fig2 = eda::bench_gen::make_fig2(4);
  h::FormalRetimeResult rt = h::formal_retime(fig2.rtl, fig2.good_cut);
  // fig2's retimed circuit has a single register; permutation is trivial
  // there, so widen the state first via an extra pipeline register.
  Rtl staged = rt.retimed;
  h::FormalEncodeResult xr = h::formal_xor_reencode(staged, {7});
  Thm chain = h::compose_steps(rt.theorem, xr.theorem);

  h::CompiledCircuit orig = h::compile(fig2.rtl);
  h::CompiledCircuit fin = h::compile(xr.encoded);
  auto [vars, body] = l::strip_forall(chain.concl());
  auto [lf, largs] = k::strip_comb(k::eq_lhs(body));
  auto [rf, rargs] = k::strip_comb(k::eq_rhs(body));
  EXPECT_TRUE(largs[0] == orig.h);
  EXPECT_TRUE(rargs[0] == fin.h);
  EXPECT_TRUE(rargs[1] == fin.q);
  EXPECT_TRUE(c::simulation_equivalent(fig2.rtl, xr.encoded, 300, 31));
}
