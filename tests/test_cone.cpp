// Tests for the cone-partitioned verification layer: extraction
// co-simulation, the mutation helpers' known semantics, the hash-consing
// miter builder's short-circuits, parallel cone checking, and the
// verdict-stitching rules.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/bitblast.h"
#include "io/blif.h"
#include "testlib/gen.h"
#include "verify/cone.h"

namespace c = eda::circuit;
namespace io = eda::io;
namespace v = eda::verify;
using c::GateNetlist;
using c::GateOp;
using c::LitId;
using eda::testlib::ConeEdit;

namespace {

/// Drive both netlists with the same random stimulus and compare ONE
/// output of each: `idx_a` of a against `idx_b` of b.  This is how a
/// single-output cone is checked against its parent (same PI interface by
/// construction; the flop populations differ, each simulator owns its
/// own).
bool outputs_agree(const GateNetlist& a, std::size_t idx_a,
                   const GateNetlist& b, std::size_t idx_b, int cycles,
                   std::uint32_t seed) {
  c::GateSimulator sa(a), sb(b);
  sa.reset();
  sb.reset();
  std::uint32_t x = seed;
  for (int k = 0; k < cycles; ++k) {
    std::vector<bool> in;
    for (std::size_t j = 0; j < a.inputs().size(); ++j) {
      x = x * 1664525u + 1013904223u;
      in.push_back((x >> 16) & 1);
    }
    if (sa.step(in)[idx_a] != sb.step(in)[idx_b]) return false;
  }
  return true;
}

}  // namespace

TEST(ExtractCones, ConesComputeTheParentOutputs) {
  GateNetlist net = eda::testlib::random_netlist_multi(11, 5, 60, 3, 4);
  std::vector<io::Cone> cones = io::extract_cones(net);
  ASSERT_EQ(cones.size(), 4u);
  for (std::size_t i = 0; i < cones.size(); ++i) {
    EXPECT_EQ(cones[i].output, net.outputs()[i].first);
    EXPECT_EQ(cones[i].net.outputs().size(), 1u);
    // All parent PIs, in parent order (positional engine interface).
    ASSERT_EQ(cones[i].net.inputs().size(), net.inputs().size());
    EXPECT_TRUE(outputs_agree(cones[i].net, 0, net, i, 300,
                              static_cast<std::uint32_t>(17 + i)));
    EXPECT_EQ(cones[i].hash, io::structural_hash(cones[i].net));
  }
}

TEST(ExtractCones, ConeIsNoLargerThanParent) {
  // Sanity on the "transitive fanin only" claim: a cone never carries
  // more flops than its parent, and a cone of an unconnected output
  // carries none of the parent's gates.
  GateNetlist net;
  LitId a = net.add_input("a");
  LitId d = net.add_dff("d", true);
  net.set_dff_next(d, net.add_gate(GateOp::Xor, d, a));
  net.add_output("flop", d);
  net.add_output("wire", a);
  std::vector<io::Cone> cones = io::extract_cones(net);
  ASSERT_EQ(cones.size(), 2u);
  EXPECT_EQ(cones[0].net.ff_count(), 1);
  EXPECT_EQ(cones[1].net.ff_count(), 0);
  EXPECT_EQ(cones[1].net.gate_count(), 0);
}

TEST(MutateCone, EquivalentEditsPreserveFunction) {
  GateNetlist net = eda::testlib::random_netlist_multi(23, 5, 60, 3, 4);
  for (ConeEdit edit : {ConeEdit::Equivalent, ConeEdit::EquivalentOpaque}) {
    GateNetlist mut = eda::testlib::mutate_cone(net, 2, edit);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(outputs_agree(net, i, mut, i, 300, 77));
    }
    // The edited cone's digest moves, the other three stay put.
    std::vector<std::uint64_t> h0 = io::cone_hashes(net);
    std::vector<std::uint64_t> h1 = io::cone_hashes(mut);
    for (std::size_t i = 0; i < 4; ++i) {
      if (i == 2) {
        EXPECT_NE(h0[i], h1[i]);
      } else {
        EXPECT_EQ(h0[i], h1[i]);
      }
    }
  }
}

TEST(MutateCone, DifferentEditComplementsEveryCycle) {
  GateNetlist net = eda::testlib::random_netlist_multi(29, 5, 60, 3, 4);
  GateNetlist mut = eda::testlib::mutate_cone(net, 1, ConeEdit::Different);
  c::GateSimulator sa(net), sb(mut);
  sa.reset();
  sb.reset();
  std::uint32_t x = 5;
  for (int k = 0; k < 200; ++k) {
    std::vector<bool> in;
    for (std::size_t j = 0; j < net.inputs().size(); ++j) {
      x = x * 1664525u + 1013904223u;
      in.push_back((x >> 16) & 1);
    }
    std::vector<bool> oa = sa.step(in), ob = sb.step(in);
    EXPECT_EQ(oa[1], !ob[1]);  // complemented...
    EXPECT_EQ(oa[0], ob[0]);   // ...and the others untouched
    EXPECT_EQ(oa[2], ob[2]);
    EXPECT_EQ(oa[3], ob[3]);
  }
}

TEST(MutateCone, RejectsBadIndexAndMissingInput) {
  GateNetlist net = eda::testlib::random_netlist(3, 2, 8, 1);
  EXPECT_THROW(eda::testlib::mutate_cone(net, 5, ConeEdit::Equivalent),
               std::out_of_range);
  GateNetlist no_inputs;
  LitId d = no_inputs.add_dff("d", false);
  no_inputs.set_dff_next(d, d);
  no_inputs.add_output("y", d);
  EXPECT_THROW(
      eda::testlib::mutate_cone(no_inputs, 0, ConeEdit::EquivalentOpaque),
      std::out_of_range);
}

TEST(PairCones, PairsPositionallyAndRejectsMismatch) {
  GateNetlist a = eda::testlib::random_netlist_multi(31, 4, 30, 2, 3);
  GateNetlist b = eda::testlib::mutate_cone(a, 0, ConeEdit::Equivalent);
  std::vector<v::ConePair> pairs = v::pair_cones(a, b);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_NE(pairs[0].hash_a, pairs[0].hash_b);
  EXPECT_EQ(pairs[1].hash_a, pairs[1].hash_b);
  EXPECT_EQ(pairs[2].hash_a, pairs[2].hash_b);
  EXPECT_EQ(pairs[0].output, "out0");

  GateNetlist fewer = eda::testlib::random_netlist_multi(31, 4, 30, 2, 2);
  EXPECT_THROW(v::pair_cones(a, fewer), v::ConeError);
}

TEST(Miter, FoldsIdenticalAndDoubleNegatedSidesToConstZero) {
  GateNetlist a = eda::testlib::random_netlist(41, 4, 40, 0);  // comb only
  GateNetlist dn = eda::testlib::mutate_cone(a, 0, ConeEdit::Equivalent);
  EXPECT_TRUE(v::miter_output_is_const(v::build_miter(a, a), false));
  // The double inverter folds away inside the shared hash-consed builder.
  EXPECT_TRUE(v::miter_output_is_const(v::build_miter(a, dn), false));
  // A complemented side does NOT fold to zero.
  GateNetlist neg = eda::testlib::mutate_cone(a, 0, ConeEdit::Different);
  EXPECT_FALSE(v::miter_output_is_const(v::build_miter(a, neg), false));
}

TEST(Miter, SharesLogicAcrossSides) {
  // B = A plus one opaque-redundant gate pair: the miter must reuse ALL of
  // A's gates for B's side rather than duplicating them.
  GateNetlist a = eda::testlib::random_netlist(43, 4, 50, 0);
  GateNetlist b = eda::testlib::mutate_cone(a, 0, ConeEdit::EquivalentOpaque);
  GateNetlist m = v::build_miter(a, b);
  // Far less than two full copies: shared gates + the redundancy + the
  // XOR/OR tail.
  EXPECT_LT(m.gate_count(), a.gate_count() + 10);
  EXPECT_THROW(
      v::build_miter(a, eda::testlib::random_netlist(43, 3, 50, 0)),
      v::ConeError);
}

TEST(CheckCone, ShortCircuitsAndEngineVerdicts) {
  GateNetlist a = eda::testlib::random_netlist_multi(47, 5, 80, 3, 2);
  GateNetlist eq = eda::testlib::mutate_cone(a, 0, ConeEdit::EquivalentOpaque);
  GateNetlist ne = eda::testlib::mutate_cone(a, 0, ConeEdit::Different);
  v::VerifyOptions opts;
  opts.timeout_sec = 30.0;

  std::vector<v::ConePair> eq_pairs = v::pair_cones(a, eq);
  std::vector<v::ConeJob> jobs;
  for (const v::ConePair& p : eq_pairs) {
    v::ConeJob j;
    j.pair = &p;
    j.opts = opts;
    jobs.push_back(j);
  }
  // Cone 1 is untouched (identity short-circuit), cone 0 needs the engine
  // (the absorption redundancy defeats the miter folding).
  std::vector<v::VerifyResult> res = v::check_cones_parallel(jobs);
  ASSERT_EQ(res.size(), 2u);
  for (const v::VerifyResult& r : res) {
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.equivalent);
  }

  std::vector<v::ConePair> ne_pairs = v::pair_cones(a, ne);
  v::ConeJob ne_job;
  ne_job.pair = &ne_pairs[0];
  ne_job.opts = opts;
  v::VerifyResult bad = v::check_cone(ne_job);
  EXPECT_TRUE(bad.completed);
  EXPECT_FALSE(bad.equivalent);
}

TEST(Stitch, AllEquivalentConesMakeTheDesignEquivalent) {
  v::ConeVerdict hit{"out0", {}, true};
  hit.result.completed = true;
  hit.result.equivalent = true;
  v::ConeVerdict proved{"out1", {}, false};
  proved.result.completed = true;
  proved.result.equivalent = true;
  v::StitchedVerdict s = v::stitch_verdicts({hit, proved});
  EXPECT_TRUE(s.completed);
  EXPECT_TRUE(s.equivalent);
  EXPECT_TRUE(s.counterexample.empty());
  EXPECT_EQ(s.cones, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.reproved, 1u);
}

TEST(Stitch, NonequivDominatesEvenOverIncompleteCones) {
  v::ConeVerdict incomplete{"out0", {}, false};  // engine blew its budget
  v::ConeVerdict neq{"out1", {}, false};
  neq.result.completed = true;
  neq.result.equivalent = false;
  v::StitchedVerdict s = v::stitch_verdicts({incomplete, neq});
  EXPECT_TRUE(s.completed);  // one differing output settles the design
  EXPECT_FALSE(s.equivalent);
  EXPECT_EQ(s.counterexample, "out1");
}

TEST(Stitch, IncompleteConeLeavesTheDesignIncomplete) {
  v::ConeVerdict ok{"out0", {}, true};
  ok.result.completed = true;
  ok.result.equivalent = true;
  v::ConeVerdict incomplete{"out1", {}, false};
  v::StitchedVerdict s = v::stitch_verdicts({ok, incomplete});
  EXPECT_FALSE(s.completed);
  EXPECT_FALSE(s.equivalent);
  EXPECT_TRUE(s.counterexample.empty());
}
