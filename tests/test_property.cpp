// Property tests over randomly generated circuits: every legal cut yields
// a formal retiming step whose theorem exists and whose output netlist is
// simulation-equivalent; every illegal cut is rejected.

#include <gtest/gtest.h>

#include <optional>
#include <random>

#include "hash/compound.h"
#include "hash/logic_opt.h"
#include "hash/retime_step.h"
#include "theories/numeral.h"

namespace c = eda::circuit;
namespace h = eda::hash;

namespace {

struct RandomCircuit {
  c::Rtl rtl;
  h::Cut legal_cut;
  h::Cut illegal_cut;  // may be empty if none could be built
};

/// Random circuit with a stratified structure: an f-layer computed from
/// registers and constants only (the legal cut), then a g-layer mixing
/// inputs, f-outputs and registers.
RandomCircuit make_random(std::uint32_t seed) {
  std::mt19937 rng(seed);
  RandomCircuit out;
  c::Rtl& r = out.rtl;
  int width = 2 + static_cast<int>(rng() % 5);

  std::vector<c::SignalId> inputs;
  int nin = 1 + static_cast<int>(rng() % 2);
  for (int k = 0; k < nin; ++k) {
    inputs.push_back(r.add_input("in" + std::to_string(k), width));
  }
  std::vector<c::SignalId> regs;
  int nreg = 1 + static_cast<int>(rng() % 3);
  for (int k = 0; k < nreg; ++k) {
    regs.push_back(r.add_reg("r" + std::to_string(k), width, rng() & 7));
  }
  c::SignalId konst = r.add_const(width, 1 + (rng() & 3));

  auto pick = [&](const std::vector<c::SignalId>& pool) {
    return pool[rng() % pool.size()];
  };
  auto word_op = [&](const std::vector<c::SignalId>& pool) {
    c::SignalId a = pick(pool), b = pick(pool);
    switch (rng() % 5) {
      case 0: return r.add_op(c::Op::Add, {a, b});
      case 1: return r.add_op(c::Op::Sub, {a, b});
      case 2: return r.add_op(c::Op::Xor, {a, b});
      case 3: return r.add_op(c::Op::And, {a, b});
      default: return r.add_op(c::Op::Not, {a});
    }
  };

  // f-layer: word ops over registers + constants only.
  std::vector<c::SignalId> f_pool = regs;
  f_pool.push_back(konst);
  int nf = 1 + static_cast<int>(rng() % 4);
  for (int k = 0; k < nf; ++k) {
    c::SignalId s = word_op(f_pool);
    out.legal_cut.f_nodes.push_back(s);
    f_pool.push_back(s);
  }
  // g-layer: everything.
  std::vector<c::SignalId> g_pool = f_pool;
  for (c::SignalId i : inputs) g_pool.push_back(i);
  int ng = 2 + static_cast<int>(rng() % 5);
  c::SignalId last = g_pool.back();
  for (int k = 0; k < ng; ++k) {
    last = word_op(g_pool);
    g_pool.push_back(last);
  }
  // Outputs and register feedback from the g-layer.
  r.add_output("y", last);
  for (c::SignalId reg : regs) {
    r.set_reg_next(reg, pick(g_pool));
  }
  r.validate();

  // An illegal cut: the legal one plus a g-node that reads an input.
  c::SignalId bad = r.add_op(c::Op::Add, {pick(inputs), pick(regs)});
  // Note: `bad` is dead (no consumer), but cut legality is checked on the
  // f side regardless.
  out.illegal_cut = out.legal_cut;
  out.illegal_cut.f_nodes.push_back(bad);
  return out;
}

}  // namespace

class RandomRetiming : public ::testing::TestWithParam<int> {};

TEST_P(RandomRetiming, LegalCutProducesEquivalentCircuit) {
  RandomCircuit rc = make_random(static_cast<std::uint32_t>(GetParam()));
  std::optional<h::FormalRetimeResult> res;
  try {
    res = h::formal_retime(rc.rtl, rc.legal_cut);
  } catch (const h::CutError& e) {
    // A randomly built f-layer can be entirely dead (no chi) — that is a
    // legitimately rejected cut, not a failure.
    SUCCEED() << e.what();
    return;
  }
  EXPECT_TRUE(res->theorem.hyps().empty());
  for (const auto& tag : res->theorem.oracles()) {
    EXPECT_EQ(tag, eda::thy::kNumComputeTag);
  }
  EXPECT_TRUE(c::simulation_equivalent(rc.rtl, res->retimed, 150,
                                       static_cast<std::uint32_t>(
                                           GetParam() * 31 + 1)));
}

TEST_P(RandomRetiming, IllegalCutRejected) {
  RandomCircuit rc = make_random(static_cast<std::uint32_t>(GetParam()));
  EXPECT_THROW(h::formal_retime(rc.rtl, rc.illegal_cut), h::CutError);
}

TEST_P(RandomRetiming, LogicOptPreservesBehaviour) {
  RandomCircuit rc = make_random(static_cast<std::uint32_t>(GetParam()));
  h::FormalOptResult res = h::formal_logic_opt(rc.rtl);
  EXPECT_TRUE(res.theorem.hyps().empty());
  EXPECT_TRUE(c::simulation_equivalent(rc.rtl, res.optimized, 150,
                                       static_cast<std::uint32_t>(
                                           GetParam() * 17 + 3)));
}

TEST_P(RandomRetiming, RetimeThenOptComposes) {
  RandomCircuit rc = make_random(static_cast<std::uint32_t>(GetParam()));
  std::optional<h::FormalRetimeResult> rt;
  try {
    rt = h::formal_retime(rc.rtl, rc.legal_cut);
  } catch (const h::CutError&) {
    return;
  }
  h::FormalOptResult op = h::formal_logic_opt(rt->retimed);
  eda::kernel::Thm compound = h::compose_steps(rt->theorem, op.theorem);
  EXPECT_TRUE(compound.hyps().empty());
  EXPECT_TRUE(c::simulation_equivalent(rc.rtl, op.optimized, 150, 77));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRetiming, ::testing::Range(1, 26));
