// Tests for the fault-tolerant service front: the deterministic fault
// injector, the classified-verdict taxonomy and retry/backoff guard, the
// admission queue (priority/FIFO schedule, backpressure, deadline
// expiry), and merge-on-save multi-process cache sharing (locking,
// stale-lock recovery, orphan sweeping, torn-write tolerance).  The
// concurrent cases (admission streams, two-writer merge) run on the TSan
// CI leg; the injector-driven cases run on ASan.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "kernel/terms.h"
#include "kernel/thm.h"
#include "service/admission.h"
#include "service/cache_file.h"
#include "service/fault.h"
#include "service/guard.h"
#include "service/verify_service.h"
#include "verify/common.h"

namespace k = eda::kernel;
namespace svc = eda::service;
namespace v = eda::verify;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

/// Every test that arms the process-wide injector runs under this fixture
/// so a failing assertion cannot leak an armed schedule into later tests.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { svc::FaultInjector::instance().reset(); }
  void TearDown() override { svc::FaultInjector::instance().reset(); }
};

svc::JobSpec job(const std::string& circuit, svc::Method method) {
  svc::JobSpec spec;
  spec.circuit = circuit;
  spec.method = method;
  spec.timeout_sec = 30.0;
  return spec;
}

/// (jobs, share) service options — the old flat positional init, regrouped.
svc::ServiceOptions sopts(unsigned jobs, bool share = true) {
  svc::ServiceOptions opts;
  opts.jobs = jobs;
  opts.cache.share = share;
  return opts;
}

/// Caches with `entries` goals keyed off a distinct per-writer stem, so
/// two writers' key sets are disjoint by construction.
void fill_disjoint(svc::TheoremCache& thms, svc::VerdictCache& verdicts,
                   const std::string& stem, int entries) {
  for (int i = 0; i < entries; ++i) {
    k::Term x = k::Term::var(stem + std::to_string(i), k::bool_ty());
    k::Term goal = k::mk_eq(x, x);
    thms.emplace(goal, k::Thm::refl(goal));
    v::VerifyResult r;
    r.completed = true;
    r.equivalent = true;
    verdicts.emplace(k::mk_eq(goal, goal), r);
  }
}

}  // namespace

// --- FaultInjector ---------------------------------------------------------

TEST_F(FaultTest, SameSeedReplaysTheExactFaultSequence) {
  svc::FaultInjector& f = svc::FaultInjector::instance();
  f.configure("seed=7,rate=0.5,sites=engine_bdd");
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) first.push_back(f.should_fail(svc::kFaultEngineBdd));
  f.configure("seed=7,rate=0.5,sites=engine_bdd");
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(f.should_fail(svc::kFaultEngineBdd), first[i]) << "visit " << i;
  }
  // The rate is honoured statistically (0.5 over 200 draws cannot
  // plausibly land outside [40, 160]) and the injected() counter agrees
  // with what the draws reported.
  std::uint64_t hits = 0;
  for (bool b : first) hits += b ? 1 : 0;
  EXPECT_GT(hits, 40u);
  EXPECT_LT(hits, 160u);
  EXPECT_EQ(f.injected(svc::kFaultEngineBdd), hits);
}

TEST_F(FaultTest, UnarmedSitesNeverFireAndResetDisarms) {
  svc::FaultInjector& f = svc::FaultInjector::instance();
  f.configure("seed=3,rate=1.0,sites=alloc");
  EXPECT_TRUE(f.enabled());
  EXPECT_TRUE(f.should_fail(svc::kFaultAlloc));
  EXPECT_FALSE(f.should_fail(svc::kFaultWorker));  // not in the schedule
  f.reset();
  EXPECT_FALSE(f.enabled());
  EXPECT_FALSE(f.should_fail(svc::kFaultAlloc));
  EXPECT_EQ(f.injected(svc::kFaultAlloc), 0u);
}

TEST_F(FaultTest, MalformedSpecsAreRejected) {
  svc::FaultInjector& f = svc::FaultInjector::instance();
  EXPECT_THROW(f.configure("rate=0.5"), svc::FaultSpecError);
  EXPECT_THROW(f.configure("seed=1,rate=2.0,sites=alloc"),
               svc::FaultSpecError);
  EXPECT_THROW(f.configure("seed=1,rate=0.5,sites=no_such_site"),
               svc::FaultSpecError);
  f.configure("off");
  EXPECT_FALSE(f.enabled());
}

// --- Retry/backoff guard ---------------------------------------------------

TEST(Guard, BackoffIsMonotoneDoublingAndCapped) {
  svc::RetryPolicy policy;
  policy.backoff_ms = 25.0;
  policy.backoff_cap_ms = 1000.0;
  double prev = 0.0;
  for (int kth = 1; kth <= 12; ++kth) {
    double b = svc::retry_backoff_ms(policy, kth);
    EXPECT_GE(b, prev) << "retry " << kth;
    EXPECT_LE(b, policy.backoff_cap_ms);
    prev = b;
  }
  EXPECT_DOUBLE_EQ(svc::retry_backoff_ms(policy, 1), 25.0);
  EXPECT_DOUBLE_EQ(svc::retry_backoff_ms(policy, 3), 100.0);
  EXPECT_DOUBLE_EQ(svc::retry_backoff_ms(policy, 12), 1000.0);
}

TEST(Guard, ClassifiesResultsAndExceptions) {
  v::VerifyResult r;
  r.completed = true;
  r.equivalent = true;
  EXPECT_EQ(svc::classify_result(r), svc::VerdictClass::Equiv);
  r.equivalent = false;
  EXPECT_EQ(svc::classify_result(r), svc::VerdictClass::Nonequiv);
  r.completed = false;
  r.failure = v::FailureKind::Timeout;
  EXPECT_EQ(svc::classify_result(r), svc::VerdictClass::Timeout);
  r.failure = v::FailureKind::ResourceExhausted;
  EXPECT_EQ(svc::classify_result(r), svc::VerdictClass::ResourceExhausted);
  r.failure = v::FailureKind::None;
  EXPECT_EQ(svc::classify_result(r), svc::VerdictClass::Unknown);

  EXPECT_EQ(svc::classify_exception(eda::bdd::BddError("pool")),
            svc::VerdictClass::ResourceExhausted);
  EXPECT_EQ(svc::classify_exception(std::bad_alloc()),
            svc::VerdictClass::ResourceExhausted);
  EXPECT_EQ(svc::classify_exception(std::runtime_error("boom")),
            svc::VerdictClass::InternalError);

  EXPECT_STREQ(svc::verdict_class_name(svc::VerdictClass::RetryLater),
               "RETRY_LATER");
  EXPECT_TRUE(svc::verdict_is_failure(svc::VerdictClass::Timeout));
  EXPECT_FALSE(svc::verdict_is_failure(svc::VerdictClass::Nonequiv));
  EXPECT_TRUE(svc::verdict_is_retryable(svc::VerdictClass::Timeout));
  EXPECT_FALSE(svc::verdict_is_retryable(svc::VerdictClass::InvalidRequest));
}

TEST(Guard, RetriesExactlyMaxRetriesWithAccountedBackoff) {
  svc::RetryPolicy policy;
  policy.max_retries = 3;
  policy.really_sleep = false;
  int calls = 0;
  svc::GuardedRun g = svc::run_guarded(
      policy, v::VerifyOptions{},
      [&](const v::VerifyOptions&) -> v::VerifyResult {
        ++calls;
        throw std::runtime_error("always fails");
      });
  EXPECT_EQ(calls, 4);  // max_retries + 1 attempts, no more, no fewer
  EXPECT_EQ(g.attempts, 4);
  EXPECT_EQ(g.verdict, svc::VerdictClass::InternalError);
  EXPECT_DOUBLE_EQ(g.backoff_ms, 25.0 + 50.0 + 100.0);
  EXPECT_FALSE(g.error.empty());
}

TEST(Guard, FirstTrySuccessMakesOneAttempt) {
  svc::RetryPolicy policy;
  policy.really_sleep = false;
  svc::GuardedRun g = svc::run_guarded(
      policy, v::VerifyOptions{}, [](const v::VerifyOptions&) {
        v::VerifyResult r;
        r.completed = true;
        r.equivalent = true;
        return r;
      });
  EXPECT_EQ(g.attempts, 1);
  EXPECT_DOUBLE_EQ(g.backoff_ms, 0.0);
  EXPECT_EQ(g.verdict, svc::VerdictClass::Equiv);
  EXPECT_TRUE(g.error.empty());
}

TEST(Guard, ResourceExhaustionEscalatesBudgetsUntilSuccess) {
  svc::RetryPolicy policy;
  policy.max_retries = 3;
  policy.escalation = 2.0;
  policy.really_sleep = false;
  v::VerifyOptions opts;
  opts.node_limit = 1000;
  std::vector<std::size_t> seen_limits;
  svc::GuardedRun g = svc::run_guarded(
      policy, opts, [&](const v::VerifyOptions& cur) {
        seen_limits.push_back(cur.node_limit);
        v::VerifyResult r;
        if (seen_limits.size() < 3) {
          r.completed = false;
          r.failure = v::FailureKind::ResourceExhausted;
          return r;
        }
        r.completed = true;
        r.equivalent = true;
        return r;
      });
  ASSERT_EQ(seen_limits.size(), 3u);
  EXPECT_EQ(seen_limits[0], 1000u);   // first run at the requested budget
  EXPECT_EQ(seen_limits[1], 2000u);   // each retry doubles the pool
  EXPECT_EQ(seen_limits[2], 4000u);
  EXPECT_EQ(g.attempts, 3);
  EXPECT_EQ(g.verdict, svc::VerdictClass::Equiv);
}

TEST(Guard, DeadlineStopsRetriesEarly) {
  svc::RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_ms = 50.0;
  policy.deadline_sec = 0.0001;  // far less than one backoff interval
  policy.really_sleep = false;
  int calls = 0;
  svc::GuardedRun g = svc::run_guarded(
      policy, v::VerifyOptions{},
      [&](const v::VerifyOptions&) -> v::VerifyResult {
        ++calls;
        throw std::runtime_error("fails");
      });
  EXPECT_EQ(calls, 1);  // no retry fits before the deadline
  EXPECT_EQ(g.verdict, svc::VerdictClass::InternalError);
}

TEST_F(FaultTest, WorkerFaultSiteFiresInsideTheGuard) {
  svc::FaultInjector::instance().configure(
      "seed=11,rate=1.0,sites=worker");
  svc::RetryPolicy policy;
  policy.max_retries = 1;
  policy.really_sleep = false;
  int calls = 0;
  svc::GuardedRun g = svc::run_guarded(
      policy, v::VerifyOptions{}, [&](const v::VerifyOptions&) {
        ++calls;
        return v::VerifyResult{};
      });
  // rate=1.0 faults every attempt before the engine body runs.
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(g.attempts, 2);
  EXPECT_EQ(g.verdict, svc::VerdictClass::InternalError);
  EXPECT_EQ(svc::FaultInjector::instance().injected(svc::kFaultWorker), 2u);
}

// --- Classified verdicts through the service -------------------------------

TEST_F(FaultTest, ServiceReportsClassifiedVerdictWithRetryAccounting) {
  svc::FaultInjector::instance().configure(
      "seed=5,rate=1.0,sites=engine_bdd");
  svc::ServiceOptions opts;
  opts.jobs = 1;
  opts.retry.max_retries = 1;
  opts.retry.really_sleep = false;
  svc::VerifyService service(opts);
  svc::JobResult r = service.run_one(job("fig2:3", svc::Method::Eijk));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.verdict, svc::VerdictClass::ResourceExhausted);
  EXPECT_EQ(r.attempts, 2);  // bounded by max_retries, and accounted
  EXPECT_GT(r.backoff_ms, 0.0);
  EXPECT_TRUE(svc::verdict_is_failure(r.verdict));
}

TEST_F(FaultTest, FaultsClearedTheSameJobCompletesEquiv) {
  svc::ServiceOptions opts;
  opts.jobs = 1;
  svc::VerifyService service(opts);
  svc::JobResult r = service.run_one(job("fig2:3", svc::Method::Eijk));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.verdict, svc::VerdictClass::Equiv);
  EXPECT_EQ(r.attempts, 1);
}

// --- Admission queue -------------------------------------------------------

TEST(Admission, DispatchIsPriorityOrderedFifoWithinLevel) {
  svc::VerifyService service(sopts(1));
  svc::AdmissionOptions aopts;
  aopts.streams = 1;           // one stream => the schedule is total
  aopts.start_paused = true;   // stage the whole queue before any dispatch
  svc::AdmissionQueue front(service, aopts);
  const int priorities[] = {0, 2, 1, 2, 0};
  for (int prio : priorities) {
    svc::JobSpec spec = job("fig2:3", svc::Method::Hash);
    spec.priority = prio;
    svc::Admission a = front.try_submit(spec);
    ASSERT_TRUE(a.accepted);
  }
  std::vector<svc::JobResult> results = front.drain();
  ASSERT_EQ(results.size(), 5u);
  for (const svc::JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.verdict, svc::VerdictClass::Equiv);
  }
  // Highest priority first; the two priority-2 jobs and the two
  // priority-0 jobs each keep their admission order.
  std::vector<std::size_t> expect = {1, 3, 2, 0, 4};
  EXPECT_EQ(front.dispatch_order(), expect);
}

TEST(Admission, TenantWeightedRoundRobinPreventsFloodStarvation) {
  // Tenant "heavy" (weight 2) floods the queue before "light" (no
  // configured weight, defaults to 1) submits two jobs.  FIFO would make
  // light wait out the whole flood; WRR interleaves the round as
  // heavy,heavy,light — one tenant's flood delays but never starves its
  // peers, and within each tenant admission order is preserved.
  svc::VerifyService service(sopts(1));
  svc::AdmissionOptions aopts;
  aopts.streams = 1;           // one stream => the schedule is total
  aopts.start_paused = true;   // stage the whole queue before any dispatch
  aopts.tenant_weights["heavy"] = 2;
  svc::AdmissionQueue front(service, aopts);
  const char* tenants[] = {"heavy", "heavy", "heavy", "heavy",
                           "light", "light"};
  for (const char* tenant : tenants) {
    svc::JobSpec spec = job("fig2:3", svc::Method::Hash);
    spec.tenant = tenant;
    ASSERT_TRUE(front.try_submit(spec).accepted);
  }
  std::vector<svc::JobResult> results = front.drain();
  ASSERT_EQ(results.size(), 6u);
  for (const svc::JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.verdict, svc::VerdictClass::Equiv);
  }
  // Results carry their tenant label back to the client.
  EXPECT_EQ(results[0].tenant, "heavy");
  EXPECT_EQ(results[4].tenant, "light");
  std::vector<std::size_t> expect = {0, 1, 4, 2, 3, 5};
  EXPECT_EQ(front.dispatch_order(), expect);
}

TEST(Admission, SingleTenantWeightedRoundRobinIsPlainFifo) {
  // With one tenant per level the WRR machinery must reduce exactly to
  // the old FIFO schedule, whatever weight is configured.
  svc::VerifyService service(sopts(1));
  svc::AdmissionOptions aopts;
  aopts.streams = 1;
  aopts.start_paused = true;
  aopts.tenant_weights["default"] = 7;
  svc::AdmissionQueue front(service, aopts);
  for (int i = 0; i < 4; ++i) {
    svc::JobSpec spec = job("fig2:3", svc::Method::Hash);
    spec.tenant = "default";
    ASSERT_TRUE(front.try_submit(spec).accepted);
  }
  std::vector<svc::JobResult> results = front.drain();
  ASSERT_EQ(results.size(), 4u);
  std::vector<std::size_t> expect = {0, 1, 2, 3};
  EXPECT_EQ(front.dispatch_order(), expect);
}

TEST(Admission, FullQueueShedsLoadWithStructuredRetryLater) {
  svc::VerifyService service(sopts(1));
  svc::AdmissionOptions aopts;
  aopts.max_depth = 2;
  aopts.streams = 1;
  aopts.start_paused = true;  // nothing dispatches, so the queue stays full
  svc::AdmissionQueue front(service, aopts);
  ASSERT_TRUE(front.try_submit(job("fig2:3", svc::Method::Hash)).accepted);
  ASSERT_TRUE(front.try_submit(job("fig2:3", svc::Method::Hash)).accepted);
  svc::Admission rejected =
      front.try_submit(job("fig2:3", svc::Method::Hash));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.queue_depth, 2u);  // the client's backoff hint
  EXPECT_NE(rejected.reason.find("RETRY_LATER"), std::string::npos);
  EXPECT_EQ(front.depth(), 2u);
  // The two admitted jobs still run to completion.
  std::vector<svc::JobResult> results = front.drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[1].ok);
}

TEST(Admission, DeadlineExpiredInQueueNeverReachesAnEngine) {
  svc::VerifyService service(sopts(1));
  svc::AdmissionOptions aopts;
  aopts.streams = 1;
  aopts.start_paused = true;
  svc::AdmissionQueue front(service, aopts);
  svc::JobSpec spec = job("fig2:3", svc::Method::Eijk);
  spec.deadline_ms = 1.0;
  ASSERT_TRUE(front.try_submit(spec).accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<svc::JobResult> results = front.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);  // the deadline was honoured, not violated
  EXPECT_FALSE(results[0].completed);
  EXPECT_EQ(results[0].verdict, svc::VerdictClass::DeadlineExpired);
  EXPECT_EQ(results[0].attempts, 0);  // no engine ever saw the job
}

// --- Merge-on-save cache sharing -------------------------------------------

TEST(MergeOnSave, TwoConcurrentWritersPreserveTheUnion) {
  std::string path = temp_path("merge_union.bin");
  std::remove(path.c_str());
  const int kEntries = 8;
  const int kRounds = 4;
  auto writer = [&](const std::string& stem) {
    svc::TheoremCache thms;
    svc::VerdictCache verdicts;
    fill_disjoint(thms, verdicts, stem, kEntries);
    svc::PersistentCacheFile file(path);
    for (int round = 0; round < kRounds; ++round) {
      file.save(thms, verdicts);
      std::this_thread::yield();
    }
  };
  std::thread a(writer, "left");
  std::thread b(writer, "right");
  a.join();
  b.join();
  // A fresh process sees every key both writers ever saved: merge-on-save
  // means a save race costs nothing, where last-writer-wins would have
  // dropped one whole side.
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  svc::CacheLoadResult r = svc::PersistentCacheFile(path).load(thms, verdicts);
  EXPECT_TRUE(r.loaded) << r.note;
  EXPECT_EQ(r.theorems, 2u * kEntries);
  EXPECT_EQ(r.verdicts, 2u * kEntries);
}

TEST(MergeOnSave, StaleLockFromACrashedSaverIsBroken) {
  std::string path = temp_path("stale_lock.bin");
  std::remove(path.c_str());
  std::ofstream(path + ".lock") << "99999\n";  // a crashed saver's leftover
  svc::CacheFileOptions opts;
  opts.stale_lock_ms = 50;
  opts.lock_timeout_ms = 5000;
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  fill_disjoint(thms, verdicts, "s", 2);
  svc::PersistentCacheFile file(path, opts);
  EXPECT_NO_THROW(file.save(thms, verdicts));
  EXPECT_FALSE(file_exists(path + ".lock"));  // released after save
  svc::TheoremCache in_t;
  svc::VerdictCache in_v;
  EXPECT_TRUE(file.load(in_t, in_v).loaded);
}

TEST(MergeOnSave, HeldLockTimesOutWithCacheFileError) {
  std::string path = temp_path("held_lock.bin");
  std::remove(path.c_str());
  std::ofstream(path + ".lock") << "1\n";  // fresh: a live saver holds it
  svc::CacheFileOptions opts;
  opts.stale_lock_ms = 60000;
  opts.lock_timeout_ms = 100;
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  fill_disjoint(thms, verdicts, "h", 1);
  svc::PersistentCacheFile file(path, opts);
  EXPECT_THROW(file.save(thms, verdicts), svc::CacheFileError);
  std::remove((path + ".lock").c_str());
}

TEST(MergeOnSave, LoadSweepsOrphanedTempFiles) {
  std::string path = temp_path("orphan_sweep.bin");
  std::remove(path.c_str());
  std::string orphan = path + ".tmp.424242.0";
  std::ofstream(orphan) << "half a cache";
  svc::CacheFileOptions opts;
  opts.orphan_tmp_ms = 0;  // everything qualifies as an orphan
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  svc::PersistentCacheFile(path, opts).load(thms, verdicts);
  EXPECT_FALSE(file_exists(orphan));
}

TEST_F(FaultTest, TornCacheWriteIsDiagnosedAsAColdStart) {
  std::string path = temp_path("torn_write.bin");
  std::remove(path.c_str());
  svc::TheoremCache thms;
  svc::VerdictCache verdicts;
  fill_disjoint(thms, verdicts, "t", 4);
  svc::PersistentCacheFile file(path);
  // The cache_write site truncates the payload mid-write — the torn file
  // still gets renamed into place, modelling a crash after rename of a
  // partially flushed temp.
  svc::FaultInjector::instance().configure(
      "seed=9,rate=1.0,sites=cache_write");
  file.save(thms, verdicts);
  svc::FaultInjector::instance().reset();
  svc::TheoremCache in_t;
  svc::VerdictCache in_v;
  svc::CacheLoadResult r = file.load(in_t, in_v);
  // Corruption never admits partial state: zero entries, with a note.
  EXPECT_FALSE(r.loaded);
  EXPECT_EQ(r.theorems, 0u);
  EXPECT_EQ(r.verdicts, 0u);
  EXPECT_FALSE(r.note.empty());
  // An intact save over the torn file recovers the store.
  file.save(thms, verdicts);
  svc::CacheLoadResult again = file.load(in_t, in_v);
  EXPECT_TRUE(again.loaded) << again.note;
  EXPECT_EQ(again.theorems, 4u);
}
