// Tests for formal dead-register elimination (the paper's "elimination of
// redundant parts"): the liveness analysis, the three-step compound
// derivation (permute -> re-associate -> DEAD_STATE_THM), and its failure
// modes.

#include <gtest/gtest.h>

#include "hash/compile.h"
#include "hash/redundancy.h"
#include "logic/bool_thms.h"

namespace c = eda::circuit;
namespace h = eda::hash;
namespace k = eda::kernel;
namespace l = eda::logic;
using c::Op;
using c::Rtl;
using c::SignalId;

namespace {

/// live register L (drives the output), dead free-running counter D, and a
/// mutually-dead pair (P reads Q, Q reads P, neither reaches the output).
Rtl make_mixed() {
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId live = rtl.add_reg("L", 4, 1);
  SignalId ctr = rtl.add_reg("D", 4, 0);
  SignalId p = rtl.add_reg("P", 4, 5);
  SignalId q = rtl.add_reg("Q", 4, 6);
  rtl.set_reg_next(live, rtl.add_op(Op::Add, {live, i}));
  rtl.set_reg_next(ctr, rtl.add_op(Op::Add, {ctr, rtl.add_const(4, 1)}));
  rtl.set_reg_next(p, rtl.add_op(Op::Xor, {q, i}));
  rtl.set_reg_next(q, rtl.add_op(Op::Add, {p, rtl.add_const(4, 2)}));
  rtl.add_output("y", rtl.add_op(Op::Or, {live, i}));
  rtl.validate();
  return rtl;
}

}  // namespace

TEST(DeadAnalysis, FindsCounterAndMutualPair) {
  Rtl rtl = make_mixed();
  auto dead = h::find_dead_registers(rtl);
  ASSERT_EQ(dead.size(), 3u);
  EXPECT_EQ(rtl.node(dead[0]).name, "D");
  EXPECT_EQ(rtl.node(dead[1]).name, "P");
  EXPECT_EQ(rtl.node(dead[2]).name, "Q");
}

TEST(DeadAnalysis, TransitiveLivenessKeepsFeederRegisters) {
  // A feeds B, B feeds the output: both live even though A has no direct
  // path to an output.
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId a = rtl.add_reg("A", 4, 0);
  SignalId b = rtl.add_reg("B", 4, 0);
  rtl.set_reg_next(a, rtl.add_op(Op::Add, {a, i}));
  rtl.set_reg_next(b, a);
  rtl.add_output("y", b);
  rtl.validate();
  EXPECT_TRUE(h::find_dead_registers(rtl).empty());
}

TEST(DeadAnalysis, SelfLoopDeadEvenWhenReadingLiveState) {
  // The dead register may read live registers; that does not revive it.
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId live = rtl.add_reg("L", 4, 0);
  SignalId d = rtl.add_reg("D", 4, 3);
  rtl.set_reg_next(live, rtl.add_op(Op::Add, {live, i}));
  rtl.set_reg_next(d, rtl.add_op(Op::Xor, {d, live}));
  rtl.add_output("y", live);
  rtl.validate();
  auto dead = h::find_dead_registers(rtl);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(rtl.node(dead[0]).name, "D");
}

TEST(FormalDeadRemoval, StripsMixedCircuitWithProof) {
  Rtl rtl = make_mixed();
  h::FormalDeadRemovalResult res = h::formal_remove_dead_registers(rtl);
  EXPECT_EQ(res.removed.size(), 3u);
  EXPECT_EQ(res.stripped.regs().size(), 1u);
  EXPECT_EQ(res.stripped.node(res.stripped.regs()[0]).name, "L");
  EXPECT_TRUE(c::simulation_equivalent(rtl, res.stripped, 300, 41));

  // Theorem relates the compiled original to the compiled stripped circuit.
  h::CompiledCircuit orig = h::compile(rtl);
  h::CompiledCircuit out = h::compile(res.stripped);
  auto [vars, body] = l::strip_forall(res.theorem.concl());
  auto [lf, largs] = k::strip_comb(k::eq_lhs(body));
  auto [rf, rargs] = k::strip_comb(k::eq_rhs(body));
  EXPECT_TRUE(largs[0] == orig.h);
  EXPECT_TRUE(largs[1] == orig.q);
  EXPECT_TRUE(rargs[0] == out.h);
  EXPECT_TRUE(rargs[1] == out.q);
  // Pure pair/induction reasoning end to end: no arithmetic oracle is
  // needed because no initial value changes, only the state layout.
  EXPECT_TRUE(res.theorem.is_pure());
}

TEST(FormalDeadRemoval, InterleavedDeadNeedsPermutation) {
  // Dead register sits *between* two live ones, exercising step 1.
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId a = rtl.add_reg("A", 4, 1);
  SignalId d = rtl.add_reg("D", 4, 9);
  SignalId b = rtl.add_reg("B", 4, 2);
  rtl.set_reg_next(a, rtl.add_op(Op::Add, {a, i}));
  rtl.set_reg_next(d, rtl.add_op(Op::Add, {d, d}));
  rtl.set_reg_next(b, rtl.add_op(Op::Xor, {b, a}));
  rtl.add_output("y", rtl.add_op(Op::Or, {a, b}));
  rtl.validate();

  h::FormalDeadRemovalResult res = h::formal_remove_dead_registers(rtl);
  ASSERT_EQ(res.removed.size(), 1u);
  EXPECT_EQ(rtl.node(res.removed[0]).name, "D");
  EXPECT_EQ(res.stripped.regs().size(), 2u);
  EXPECT_TRUE(c::simulation_equivalent(rtl, res.stripped, 300, 43));
  EXPECT_TRUE(res.theorem.is_pure());
}

TEST(FormalDeadRemoval, NothingToRemoveThrows) {
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId a = rtl.add_reg("A", 4, 0);
  rtl.set_reg_next(a, rtl.add_op(Op::Add, {a, i}));
  rtl.add_output("y", a);
  rtl.validate();
  EXPECT_THROW(h::formal_remove_dead_registers(rtl), h::RedundancyError);
}

TEST(FormalDeadRemoval, AllDeadThrows) {
  Rtl rtl;
  SignalId i = rtl.add_input("i", 4);
  SignalId a = rtl.add_reg("A", 4, 0);
  rtl.set_reg_next(a, rtl.add_op(Op::Add, {a, rtl.add_const(4, 1)}));
  rtl.add_output("y", i);  // output ignores all state
  rtl.validate();
  EXPECT_THROW(h::formal_remove_dead_registers(rtl), h::RedundancyError);
}

TEST(FormalDeadRemoval, ConventionalAgreesWithFormal) {
  Rtl rtl = make_mixed();
  Rtl conv = h::conventional_remove_dead(rtl);
  h::FormalDeadRemovalResult res = h::formal_remove_dead_registers(rtl);
  EXPECT_TRUE(h::compile(conv).h == h::compile(res.stripped).h);
  EXPECT_TRUE(h::compile(conv).q == h::compile(res.stripped).q);
}
