// Tests for the Leiserson–Saxe retiming substrate and the formally
// verified multi-step retiming chain.

#include <gtest/gtest.h>

#include <random>

#include "bench_gen/fig2.h"
#include "bench_gen/iwls.h"
#include "retime/elementary.h"
#include "retime/graph.h"
#include "retime/leiserson_saxe.h"

namespace c = eda::circuit;
namespace r = eda::retime;

namespace {

/// A feed-forward pipeline whose single register sits at the end: retiming
/// can redistribute it into the middle and halve the period.
r::RetimeGraph end_loaded_pipeline() {
  r::RetimeGraph g;
  g.delay = {0, 1, 1, 1};
  g.vertex_signal = {-1, -1, -1, -1};
  g.edges = {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 1}};
  return g;
}

}  // namespace

TEST(Graph, ClockPeriodOfChain) {
  r::RetimeGraph g;
  g.delay = {0, 2, 2, 2};
  g.vertex_signal = {-1, -1, -1, -1};
  // host -> v1 -> v2 -> v3 -> host, no registers: period = 6.
  g.edges = {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}};
  EXPECT_EQ(r::clock_period(g), 6);
  // A register in the middle halves the path.
  g.edges[1].weight = 1;
  EXPECT_EQ(r::clock_period(g), 4);
}

TEST(Graph, FromRtlFig2) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  r::RetimeGraph g = r::graph_from_rtl(fig2.rtl);
  // Vertices: host + {add, eq, mux}.
  EXPECT_EQ(g.vertex_count(), 4);
  int period = r::clock_period(fig2.rtl);
  EXPECT_GT(period, 0);
}

TEST(LeisersonSaxe, EndLoadedPipelineImproves) {
  r::RetimeGraph g = end_loaded_pipeline();
  int before = r::clock_period(g);
  EXPECT_EQ(before, 3);
  r::RetimingResult rr = r::min_period_retiming(g);
  EXPECT_LT(rr.period, before);
  // The returned labels actually achieve the period.
  r::RetimeGraph after = r::apply_retiming(g, rr.r);
  EXPECT_EQ(r::clock_period(after), rr.period);
}

TEST(LeisersonSaxe, MatchesBruteForceOnRandomGraphs) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 3 + static_cast<int>(rng() % 3);  // 3..5 vertices + host
    r::RetimeGraph g;
    g.delay.push_back(0);
    g.vertex_signal.push_back(-1);
    for (int v = 1; v <= n; ++v) {
      g.delay.push_back(1 + static_cast<int>(rng() % 5));
      g.vertex_signal.push_back(-1);
    }
    // Ring through all vertices to keep it strongly connected, plus chords.
    for (int v = 0; v <= n; ++v) {
      g.edges.push_back({v, (v + 1) % (n + 1),
                         static_cast<int>(rng() % 3)});
    }
    for (int extra = 0; extra < n; ++extra) {
      int u = static_cast<int>(rng() % (n + 1));
      int v = static_cast<int>(rng() % (n + 1));
      g.edges.push_back({u, v, 1 + static_cast<int>(rng() % 2)});
    }
    // Skip graphs with zero-weight cycles.
    try {
      r::clock_period(g);
    } catch (const c::RtlError&) {
      continue;
    }
    r::RetimingResult rr = r::min_period_retiming(g);
    int brute = r::brute_force_min_period(g, 3);
    EXPECT_EQ(rr.period, brute) << "trial " << trial;
  }
}

TEST(LeisersonSaxe, ApplyRejectsIllegal) {
  r::RetimeGraph g = end_loaded_pipeline();
  std::vector<int> bad(static_cast<std::size_t>(g.vertex_count()), 0);
  bad[1] = 5;  // would drive some edge negative
  EXPECT_THROW(r::apply_retiming(g, bad), c::RtlError);
}

TEST(Chain, DeepPipelineFormalChain) {
  auto deep = eda::bench_gen::make_fig2_deep(4, 3);
  // Move the register forward across all three incrementers one at a time:
  // labels -3, -2, -1 on the successive incrementers... the register ends
  // past the last incrementer it crosses.
  std::map<c::SignalId, int> labels;
  labels[deep.inc_nodes[0]] = -1;
  r::ChainResult res = r::formal_retime_by_labels(deep.rtl, labels);
  EXPECT_EQ(res.steps, 1);
  EXPECT_TRUE(c::simulation_equivalent(deep.rtl, res.final_rtl, 200, 3));
  EXPECT_TRUE(res.theorem.hyps().empty());
}

TEST(Chain, MultiStepLabels) {
  // Two-register chain: R1 -> +1 -> R2 -> +1 -> y.  Labelling the second
  // incrementer -2 makes registers cross it twice, exercising the
  // decomposition into two elementary formal steps.
  c::Rtl rtl;
  auto x = rtl.add_input("x", 4);
  auto r1 = rtl.add_reg("R1", 4, 0);
  auto r2 = rtl.add_reg("R2", 4, 0);
  auto one = rtl.add_const(4, 1);
  auto n1 = rtl.add_op(c::Op::Add, {r1, one});
  auto n2 = rtl.add_op(c::Op::Add, {r2, one});
  auto y = rtl.add_op(c::Op::Xor, {n2, x});
  rtl.set_reg_next(r1, x);
  rtl.set_reg_next(r2, n1);
  rtl.add_output("y", y);
  std::map<c::SignalId, int> labels;
  labels[n1] = -1;
  labels[n2] = -2;
  r::ChainResult res = r::formal_retime_by_labels(rtl, labels);
  EXPECT_EQ(res.steps, 2);
  EXPECT_TRUE(c::simulation_equivalent(rtl, res.final_rtl, 200, 9));
  EXPECT_TRUE(res.theorem.hyps().empty());
}

TEST(Chain, PositiveLabelTriggersBackwardMove) {
  // Forward-retime first so a register sits behind the incrementer, then
  // move it back with a positive label; the composed chain must restore
  // behaviour (and its theorem carries both instantiation directions).
  auto fig2 = eda::bench_gen::make_fig2(4);
  eda::hash::RetimeMapping fwd =
      eda::hash::conventional_retime_mapped(fig2.rtl, fig2.good_cut);
  std::map<c::SignalId, int> labels;
  labels[fwd.comb_map.at(fig2.good_cut.f_nodes[0])] = 1;
  r::ChainResult res = r::formal_retime_by_labels(fwd.rtl, labels);
  EXPECT_EQ(res.steps, 1);
  EXPECT_TRUE(c::simulation_equivalent(fwd.rtl, res.final_rtl, 300, 13));
  // Round trip back to the original compiled description.
  eda::hash::CompiledCircuit orig = eda::hash::compile(fig2.rtl);
  eda::hash::CompiledCircuit fin = eda::hash::compile(res.final_rtl);
  EXPECT_TRUE(orig.h == fin.h);
}

TEST(Chain, MixedLabelsForwardThenBackward) {
  // Two incrementer stages: push the register across the first (forward,
  // r = -1) while pulling it back across... a pure-forward then backward
  // round trip on the deep pipeline exercises both phases in one chain.
  auto deep = eda::bench_gen::make_fig2_deep(4, 2);
  std::map<c::SignalId, int> fwd_labels;
  fwd_labels[deep.inc_nodes[0]] = -1;
  r::ChainResult fwd = r::formal_retime_by_labels(deep.rtl, fwd_labels);
  EXPECT_EQ(fwd.steps, 1);
  EXPECT_TRUE(
      c::simulation_equivalent(deep.rtl, fwd.final_rtl, 300, 17));
}

TEST(Chain, MinAreaRetimeFormally) {
  auto deep = eda::bench_gen::make_fig2_deep(4, 3);
  auto res = r::formal_min_area_retime(deep.rtl);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(
      c::simulation_equivalent(deep.rtl, res->final_rtl, 300, 19));
  int before = r::clock_period(deep.rtl);
  int after = r::clock_period(res->final_rtl);
  EXPECT_LE(after, before);
}

TEST(Chain, ZeroLabelsGiveIdentityTheorem) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  std::map<c::SignalId, int> labels;
  r::ChainResult res = r::formal_retime_by_labels(fig2.rtl, labels);
  EXPECT_EQ(res.steps, 0);
  EXPECT_TRUE(res.theorem.hyps().empty());
}
