// Unit tests for the trusted kernel: types, terms, substitution and the
// primitive inference rules.

#include <gtest/gtest.h>

#include "kernel/printer.h"
#include "kernel/signature.h"
#include "kernel/terms.h"
#include "kernel/thm.h"
#include "testlib/gen.h"

namespace k = eda::kernel;
using k::Term;
using k::Thm;
using k::Type;

namespace {

Type b() { return k::bool_ty(); }
Term bv(const std::string& n) { return Term::var(n, b()); }

}  // namespace

TEST(Types, ConstructorsAndAccessors) {
  Type a = Type::var("'a");
  EXPECT_TRUE(a.is_var());
  EXPECT_EQ(a.name(), "'a");
  Type f = k::fun_ty(a, b());
  EXPECT_TRUE(f.is_app());
  EXPECT_EQ(f.name(), "fun");
  EXPECT_EQ(f.args().size(), 2u);
  EXPECT_EQ(k::dom_ty(f), a);
  EXPECT_EQ(k::cod_ty(f), b());
}

TEST(Types, EqualityAndOrder) {
  EXPECT_EQ(Type::var("'a"), Type::var("'a"));
  EXPECT_NE(Type::var("'a"), Type::var("'b"));
  EXPECT_EQ(k::fun_ty(b(), b()), k::fun_ty(b(), b()));
  EXPECT_NE(k::fun_ty(b(), b()), b());
  EXPECT_LT(Type::compare(Type::var("'a"), Type::var("'b")), 0);
}

TEST(Types, Substitution) {
  k::TypeSubst theta;
  theta.emplace("'a", b());
  Type f = k::fun_ty(k::alpha_ty(), k::beta_ty());
  Type g = k::type_subst(theta, f);
  EXPECT_EQ(k::dom_ty(g), b());
  EXPECT_EQ(k::cod_ty(g), k::beta_ty());
}

TEST(Types, Matching) {
  k::TypeSubst theta;
  Type pat = k::fun_ty(k::alpha_ty(), k::alpha_ty());
  EXPECT_TRUE(k::type_match(pat, k::fun_ty(b(), b()), theta));
  EXPECT_EQ(theta.at("'a"), b());
  // Conflicting binding fails.
  k::TypeSubst theta2;
  EXPECT_FALSE(
      k::type_match(pat, k::fun_ty(b(), k::fun_ty(b(), b())), theta2));
}

TEST(Types, ToString) {
  Type t = k::fun_ty(k::fun_ty(b(), b()), b());
  EXPECT_EQ(t.to_string(), "(bool -> bool) -> bool");
  EXPECT_EQ(k::prod_ty(b(), b()).to_string(), "bool # bool");
}

TEST(Terms, CombTypeChecks) {
  Term f = Term::var("f", k::fun_ty(b(), b()));
  Term x = bv("x");
  Term fx = Term::comb(f, x);
  EXPECT_EQ(fx.type(), b());
  EXPECT_THROW(Term::comb(x, x), k::KernelError);
  Term num_x = Term::var("x", k::num_ty());
  EXPECT_THROW(Term::comb(f, num_x), k::KernelError);
}

TEST(Terms, AlphaEquivalence) {
  Term x = bv("x"), y = bv("y");
  Term idx = Term::abs(x, x);
  Term idy = Term::abs(y, y);
  EXPECT_EQ(idx, idy);
  EXPECT_EQ(idx.hash(), idy.hash());
  // \x. \y. x  !=  \x. \y. y
  Term t1 = Term::abs(x, Term::abs(y, x));
  Term t2 = Term::abs(x, Term::abs(y, y));
  EXPECT_NE(t1, t2);
  // \x. \x. x : inner binder shadows.
  Term shadow = Term::abs(x, Term::abs(x, x));
  EXPECT_EQ(shadow, Term::abs(y, Term::abs(x, x)));
  EXPECT_NE(shadow, Term::abs(y, Term::abs(x, y)));
}

TEST(Terms, AlphaEquivalenceAcrossDistinctNodes) {
  // The binder and its occurrence built as separate nodes must still bind.
  Term x1 = bv("x");
  Term x2 = bv("x");
  Term t1 = Term::abs(x1, x2);
  Term t2 = Term::abs(bv("z"), bv("z"));
  EXPECT_EQ(t1, t2);
}

TEST(Terms, SharedStructureShortCircuitRespectsBinders) {
  // compare() may stop early on pointer-identical subterms only while the
  // pending binder columns agree.  `\x. \y. P` vs `\y. \x. P` share the
  // node P = (x = y) but are NOT alpha-equal — the asymmetric binder
  // context must disable the short circuit.
  Term x = bv("x"), y = bv("y");
  Term p = k::mk_eq(x, y);  // one shared node
  Term t1 = Term::abs(x, Term::abs(y, p));
  Term t2 = Term::abs(y, Term::abs(x, p));
  EXPECT_NE(t1, t2);
  // Identical binder columns re-enable it: both sides literally \x.\y. p.
  Term t3 = Term::abs(x, Term::abs(y, p));
  EXPECT_EQ(t1, t3);
}

TEST(Terms, ComparisonLinearInDagSize) {
  // A 64-deep doubling DAG has ~2^64 tree nodes; comparison must finish
  // (instantly) by exploiting sharing.
  Term big = eda::testlib::eq_tower(64);
  Term big2 = k::mk_eq(big, big);
  EXPECT_EQ(big2, k::mk_eq(big, big));
  EXPECT_NE(big, big2);
}

TEST(Terms, FreeVars) {
  Term x = bv("x"), y = bv("y");
  Term t = Term::abs(x, k::mk_eq(x, y));
  auto fv = k::free_vars(t);
  EXPECT_EQ(fv.size(), 1u);
  EXPECT_TRUE(fv.count(y) > 0);
  EXPECT_FALSE(k::is_free_in(x, t));
  EXPECT_TRUE(k::is_free_in(y, t));
}

TEST(Terms, VsubstSimple) {
  Term x = bv("x"), y = bv("y");
  k::TermSubst theta;
  theta.emplace(x, y);
  EXPECT_EQ(k::vsubst(theta, x), y);
  EXPECT_EQ(k::vsubst(theta, k::mk_eq(x, x)), k::mk_eq(y, y));
}

TEST(Terms, VsubstCaptureAvoidance) {
  // (\y. x = y)[x := y]  must rename the binder, not capture.
  Term x = bv("x"), y = bv("y");
  Term t = Term::abs(y, k::mk_eq(x, y));
  k::TermSubst theta;
  theta.emplace(x, y);
  Term r = k::vsubst(theta, t);
  // Result should be alpha-equal to \z. y = z.
  Term z = bv("z");
  EXPECT_EQ(r, Term::abs(z, k::mk_eq(y, z)));
}

TEST(Terms, VsubstBoundNotSubstituted) {
  Term x = bv("x");
  Term t = Term::abs(x, x);
  k::TermSubst theta;
  theta.emplace(x, bv("y"));
  EXPECT_EQ(k::vsubst(theta, t), t);
}

TEST(Terms, TypeInstRenamesOnClash) {
  // \x:'a. x:bool  --['a := bool]-->  binder must not capture the free x.
  Term xa = Term::var("x", k::alpha_ty());
  Term xb = bv("x");
  Term t = Term::abs(xa, k::mk_eq(xb, xb));
  k::TypeSubst theta;
  theta.emplace("'a", b());
  Term r = k::type_inst(theta, t);
  // The free x:bool stays free.
  EXPECT_TRUE(k::is_free_in(xb, r));
  EXPECT_TRUE(r.is_abs());
  EXPECT_NE(r.bound_var().name(), "x");
}

TEST(Terms, StripComb) {
  Term f = Term::var("f", k::fun_ty(b(), k::fun_ty(b(), b())));
  Term x = bv("x"), y = bv("y");
  Term t = Term::comb(Term::comb(f, x), y);
  auto [head, args] = k::strip_comb(t);
  EXPECT_EQ(head, f);
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[0], x);
  EXPECT_EQ(args[1], y);
  EXPECT_EQ(k::list_comb(f, {x, y}), t);
}

TEST(Interning, PointerIdentityIsStructuralEquality) {
  // Structurally identical terms built through independent construction
  // paths intern to one node: identical() <=> structural equality.
  Term t1 = k::mk_eq(bv("x"), bv("y"));
  Term t2 = k::mk_eq(bv("x"), bv("y"));
  EXPECT_TRUE(t1.identical(t2));
  EXPECT_EQ(t1.node_id(), t2.node_id());
  EXPECT_EQ(t1, t2);
  // And conversely: distinct structures are distinct nodes.
  Term t3 = k::mk_eq(bv("y"), bv("x"));
  EXPECT_FALSE(t1.identical(t3));
}

TEST(Interning, TypesInternToOneNode) {
  Type f1 = k::fun_ty(k::bool_ty(), k::num_ty());
  Type f2 = k::fun_ty(k::bool_ty(), k::num_ty());
  EXPECT_EQ(f1.node_id(), f2.node_id());
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1.node_id(), k::fun_ty(k::num_ty(), k::bool_ty()).node_id());
  // has_vars is precomputed and consistent.
  EXPECT_FALSE(f1.has_vars());
  EXPECT_TRUE(k::fun_ty(k::alpha_ty(), k::bool_ty()).has_vars());
}

TEST(Interning, AlphaEquivalentAbstractionsCompareEqualButStayDistinct) {
  // Interning is structural (binder spellings matter), while operator== is
  // alpha-equivalence: \x. x and \y. y are two nodes that compare equal,
  // with equal (alpha-invariant) hashes.
  Term idx = Term::abs(bv("x"), bv("x"));
  Term idy = Term::abs(bv("y"), bv("y"));
  EXPECT_FALSE(idx.identical(idy));
  EXPECT_EQ(idx, idy);
  EXPECT_EQ(idx.hash(), idy.hash());
  // Rebuilding either spelling hits the same interned node.
  EXPECT_TRUE(idx.identical(Term::abs(bv("x"), bv("x"))));
}

TEST(Interning, EqualityOnIndependentlyBuiltTowersIsConstantTime) {
  // Two independently built 2^40-leaf towers collapse to one node each;
  // without interning this comparison would visit ~2^40 node pairs.
  Term a = eda::testlib::eq_tower(40);
  Term b = eda::testlib::eq_tower(40);
  EXPECT_TRUE(a.identical(b));
  EXPECT_EQ(a, b);
}

TEST(Interning, FreeVarSetIsCachedPerNode) {
  Term t = Term::abs(bv("x"), k::mk_eq(bv("x"), bv("y")));
  const std::set<Term>& fv1 = k::free_vars_set(t);
  const std::set<Term>& fv2 = k::free_vars_set(t);
  EXPECT_EQ(&fv1, &fv2);  // same cached set, not a recomputation
  EXPECT_EQ(fv1.size(), 1u);
  EXPECT_TRUE(fv1.count(bv("y")) > 0);
}

TEST(Interning, HasTypeVarsPrecomputed) {
  Term ground = k::mk_eq(bv("p"), bv("q"));
  EXPECT_FALSE(ground.has_type_vars());
  Term poly = Term::var("v", k::alpha_ty());
  EXPECT_TRUE(poly.has_type_vars());
  EXPECT_TRUE(Term::abs(poly, poly).has_type_vars());
}

TEST(Interning, SurvivesHighChurnConstruction) {
  // Churn: build a large batch of distinct terms (forcing table growth and
  // rehashes), then rebuild the same batch and require every node to be an
  // intern hit with stable identity.
  auto build = [](int salt) {
    std::vector<Term> out;
    for (int i = 0; i < 2000; ++i) {
      Term v = Term::var("c" + std::to_string(i) + "_" + std::to_string(salt),
                         k::num_ty());
      Term e = k::mk_eq(v, v);
      out.push_back(Term::abs(v, k::mk_eq(e, e)));
    }
    return out;
  };
  std::vector<Term> first = build(7);
  auto stats_before = Term::intern_stats();
  std::vector<Term> second = build(7);
  auto stats_after = Term::intern_stats();
  // No new nodes were created by the rebuild, only table hits.
  EXPECT_EQ(stats_before.live_nodes, stats_after.live_nodes);
  EXPECT_GT(stats_after.hits, stats_before.hits);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i].identical(second[i]));
  }
  // Distinct content still interns to distinct nodes after all the churn.
  std::vector<Term> other = build(8);
  EXPECT_FALSE(first[0].identical(other[0]));
}

TEST(Rules, Refl) {
  Term x = bv("x");
  Thm th = Thm::refl(x);
  EXPECT_TRUE(th.hyps().empty());
  EXPECT_EQ(th.concl(), k::mk_eq(x, x));
  EXPECT_TRUE(th.is_pure());
}

TEST(Rules, AssumeRequiresBool) {
  EXPECT_THROW(Thm::assume(Term::var("n", k::num_ty())), k::KernelError);
  Term p = bv("p");
  Thm th = Thm::assume(p);
  ASSERT_EQ(th.hyps().size(), 1u);
  EXPECT_EQ(th.hyps()[0], p);
  EXPECT_EQ(th.concl(), p);
}

TEST(Rules, TransChecksMiddle) {
  Term x = bv("x"), y = bv("y"), z = bv("z");
  Thm xy = Thm::assume(k::mk_eq(x, y));
  Thm yz = Thm::assume(k::mk_eq(y, z));
  Thm xz = Thm::trans(xy, yz);
  EXPECT_EQ(xz.concl(), k::mk_eq(x, z));
  EXPECT_EQ(xz.hyps().size(), 2u);
  Thm xx = Thm::refl(x);
  EXPECT_THROW(Thm::trans(xx, yz), k::KernelError);
}

TEST(Rules, TransIsConstantTimeOnSharedStructure) {
  // The paper's compound-synthesis argument: a = b, b = c  |-  a = c via one
  // rule application, regardless of the size of a, b, c.
  Term big = eda::testlib::eq_tower(1000);
  Term p = Term::var("p", big.type());
  Thm ab = Thm::assume(k::mk_eq(big, p));
  Thm bc = Thm::assume(k::mk_eq(p, big));
  Thm ac = Thm::trans(ab, bc);
  EXPECT_EQ(ac.concl(), k::mk_eq(big, big));
}

TEST(Rules, Beta) {
  Term x = bv("x"), y = bv("y");
  Term lam = Term::abs(x, k::mk_eq(x, x));
  Term redex = Term::comb(lam, y);
  Thm th = Thm::beta(redex);
  EXPECT_EQ(th.concl(), k::mk_eq(redex, k::mk_eq(y, y)));
  EXPECT_THROW(Thm::beta(y), k::KernelError);
}

TEST(Rules, AbsBlocksFreeHypVar) {
  Term x = bv("x"), y = bv("y");
  Thm th = Thm::assume(k::mk_eq(x, y));
  EXPECT_THROW(Thm::abs(x, th), k::KernelError);
  Term z = bv("z");
  Thm ok = Thm::abs(z, th);
  EXPECT_EQ(ok.concl(),
            k::mk_eq(Term::abs(z, x), Term::abs(z, y)));
}

TEST(Rules, EqMp) {
  Term p = bv("p"), q = bv("q");
  Thm pq = Thm::assume(k::mk_eq(p, q));
  Thm pp = Thm::assume(p);
  Thm qq = Thm::eq_mp(pq, pp);
  EXPECT_EQ(qq.concl(), q);
  EXPECT_EQ(qq.hyps().size(), 2u);
  EXPECT_THROW(Thm::eq_mp(pp, pp), k::KernelError);
}

TEST(Rules, DeductAntisym) {
  Term p = bv("p"), q = bv("q");
  Thm th = Thm::deduct_antisym(Thm::assume(p), Thm::assume(q));
  EXPECT_EQ(th.concl(), k::mk_eq(p, q));
  // Each side's conclusion is removed from the other's hypotheses.
  ASSERT_EQ(th.hyps().size(), 2u);
}

TEST(Rules, InstType) {
  Term xa = Term::var("x", k::alpha_ty());
  Thm th = Thm::refl(xa);
  k::TypeSubst theta;
  theta.emplace("'a", b());
  Thm th2 = Thm::inst_type(theta, th);
  EXPECT_EQ(th2.concl(), k::mk_eq(bv("x"), bv("x")));
}

TEST(Rules, Inst) {
  Term x = bv("x"), y = bv("y");
  Thm th = Thm::refl(x);
  k::TermSubst theta;
  theta.emplace(x, y);
  Thm th2 = Thm::inst(theta, th);
  EXPECT_EQ(th2.concl(), k::mk_eq(y, y));
  // Non-variable key is rejected.
  k::TermSubst bad;
  bad.emplace(k::mk_eq(x, x), k::mk_eq(y, y));
  EXPECT_THROW(Thm::inst(bad, th), k::KernelError);
}

TEST(Rules, HypsStayCanonical) {
  Term p = bv("p"), q = bv("q");
  Thm th1 = Thm::assume(p);
  Thm th2 = Thm::assume(p);
  Thm both = Thm::deduct_antisym(th1, Thm::assume(q));
  // p, q each appear once.
  EXPECT_EQ(both.hyps().size(), 2u);
}

TEST(Oracle, TagPropagates) {
  Term p = bv("p");
  Thm ax = k::Oracle::admit("TEST_TAG", p);
  EXPECT_FALSE(ax.is_pure());
  Thm e = Thm::deduct_antisym(ax, Thm::assume(bv("q")));
  EXPECT_EQ(e.oracles().count("TEST_TAG"), 1u);
  // Pure theorems stay pure.
  EXPECT_TRUE(Thm::refl(p).is_pure());
}

TEST(Signature, PrimitiveSignature) {
  auto& sig = k::Signature::instance();
  EXPECT_TRUE(sig.has_type("bool"));
  EXPECT_TRUE(sig.has_type("fun"));
  EXPECT_TRUE(sig.has_const("="));
  EXPECT_EQ(sig.type_arity("fun"), 2u);
}

TEST(Signature, DeclareIdempotentWhenIdentical) {
  auto& sig = k::Signature::instance();
  sig.declare_type("test_ty", 1);
  EXPECT_NO_THROW(sig.declare_type("test_ty", 1));
  EXPECT_THROW(sig.declare_type("test_ty", 2), k::KernelError);
}

TEST(Signature, NewDefinitionRejectsFreeVars) {
  auto& sig = k::Signature::instance();
  EXPECT_THROW(sig.new_definition("bad_def", bv("x")), k::KernelError);
}

TEST(Signature, NewDefinitionProducesEquation) {
  auto& sig = k::Signature::instance();
  Term x = bv("x");
  Thm def = sig.new_definition("my_id_fn", Term::abs(x, x));
  EXPECT_TRUE(k::is_eq(def.concl()));
  EXPECT_TRUE(def.is_pure());
  EXPECT_TRUE(sig.has_const("my_id_fn"));
  // Identical redefinition is idempotent; conflicting redefinition throws.
  EXPECT_NO_THROW(sig.new_definition("my_id_fn", Term::abs(x, x)));
  Term y = Term::var("y", k::num_ty());
  EXPECT_THROW(sig.new_definition("my_id_fn", Term::abs(y, y)),
               k::KernelError);
}

TEST(Signature, MkConstAtChecksInstance) {
  auto& sig = k::Signature::instance();
  Term eq_at_bool = sig.mk_const_at("=", k::fun_ty(b(), k::fun_ty(b(), b())));
  EXPECT_EQ(eq_at_bool.name(), "=");
  EXPECT_THROW(sig.mk_const_at("=", b()), k::KernelError);
}

TEST(Printer, BasicForms) {
  // Equality at bool renders as <=> (HOL convention); at other types as =.
  Term x = bv("x"), y = bv("y");
  EXPECT_EQ(eda::kernel::pretty(k::mk_eq(x, y)), "x <=> y");
  Term n = Term::var("n", k::num_ty()), m = Term::var("m", k::num_ty());
  EXPECT_EQ(eda::kernel::pretty(k::mk_eq(n, m)), "n = m");
  Term lam = Term::abs(x, x);
  EXPECT_EQ(eda::kernel::pretty(lam), "\\x. x");
}
