#!/usr/bin/env python3
"""Assert the multi-thread speedup recorded in BENCH_kernel.json.

Usage:
    check_scaling.py BENCH_kernel.json --cores N

Policy (ROADMAP): on runners with >= 8 cores the 8-thread speedup must be
>= 3x; with >= 4 cores the 4-thread speedup must be >= 2x; below 4 cores
the curve is meaningless (the container the baseline was recorded in
exposes one hardware thread) and the check passes with a notice.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--cores", type=int, required=True,
                        help="runner hardware core count (nproc)")
    args = parser.parse_args()

    with open(args.bench_json) as f:
        bench = json.load(f)
    curve = {point["threads"]: point["speedup"]
             for point in bench.get("scaling", [])}
    if not curve:
        print("check_scaling: no scaling section in", args.bench_json)
        return 1

    if args.cores >= 8:
        threads, need = 8, 3.0
    elif args.cores >= 4:
        threads, need = 4, 2.0
    else:
        print(f"check_scaling: {args.cores} core(s) — scaling assertion "
              f"skipped (needs >= 4)")
        return 0

    got = curve.get(threads)
    if got is None:
        print(f"check_scaling: no {threads}-thread point in the curve "
              f"({sorted(curve)})")
        return 1
    print(f"check_scaling: {args.cores} cores, {threads}-thread speedup "
          f"{got:.2f}x (required >= {need:.1f}x)")
    if got < need:
        print(f"check_scaling: FAIL — parallel verification pipeline "
              f"scaled {got:.2f}x, expected >= {need:.1f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
