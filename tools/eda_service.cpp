// eda_service — the multi-circuit verification service front end.
//
// Reads a job manifest (or expands a parameter-sweep grid), runs every job
// through service::VerifyService — many netlists in flight on the
// work-stealing pool, one shared theorem/verdict cache — and reports per-job
// results plus service-level cache and timing statistics, optionally as
// JSON.
//
//   eda_service --manifest FILE [options]
//   eda_service --sweep "widths=2,4;methods=hash,eijk;copies=3" [options]
//
// options:
//   --jobs N               concurrent job streams (default: hardware)
//   --serial               run jobs one at a time on the caller
//   --no-shared-cache      per-job proving, no cross-job amortisation
//   --incremental          cone-partitioned blif-pair jobs: per-output
//                          obligations keyed on canonical cone hashes, so
//                          a warm cache re-proves only the changed cones
//   --no-sim               disable the bit-parallel simulation pre-filter
//                          (every obligation goes straight to its engine)
//   --sim-vectors N        random vectors per refutation attempt (default
//                          256, rounded up to whole 64-lane words)
//   --sim-seed S           stimulus seed for the pre-filter
//   --no-batch-bdd         disable the shared-pool batched BDD kernel on
//                          the incremental engine tail (one BddManager
//                          per cone instead)
//   --timeout S            override every job's engine timeout
//   --json FILE            write the structured results
//   --cache-file FILE      warm-start the shared caches from FILE (corrupt
//                          or missing files start cold, with a diagnostic)
//                          and save them back after the batch drains —
//                          merge-on-save under a lock file, so concurrent
//                          processes sharing FILE lose no entries
//   --cache-server ADDR    share the caches through an eda_cached daemon at
//                          ADDR ("unix:/path" or "host:port"): lookups and
//                          publishes go to the daemon, every publish also
//                          lands in an in-process fallback, and a dead or
//                          unreachable daemon degrades the client to that
//                          fallback (RETRY_LATER-style capped backoff) —
//                          verdicts are never lost and never wrong
//   --cache-pool N         remote-cache connection pool size (default 4):
//                          up to N exchanges pipeline on distinct sockets;
//                          1 restores the serialized single-socket client
//   --no-cache-batch       per-entry remote frames even against a v2
//                          daemon (batched LookupBatch/PublishBatch frames
//                          are otherwise negotiated on Ping and collapse
//                          an incremental cone sweep to <= 2 round trips)
//   --tenant NAME          tenant label for remote-cache requests and
//                          admission fairness (weighted round-robin across
//                          tenants within each priority level)
//   --require-cache-hits   exit 1 unless the shared caches served at least
//                          one obligation (CI gate for the service loop)
//   --max-retries N        extra attempts per obligation on a classified
//                          retryable failure (TIMEOUT, RESOURCE_EXHAUSTED,
//                          INTERNAL_ERROR), budgets escalating 2x per
//                          attempt with capped exponential backoff
//                          (default 2)
//   --deadline-ms N        per-job wall-clock deadline from admission:
//                          jobs still queued past it are skipped with a
//                          DEADLINE_EXPIRED verdict, dispatched jobs have
//                          their engine budget capped to the remainder
//   --queue-depth N        admission queue bound; jobs beyond it are
//                          rejected with a structured RETRY_LATER verdict
//                          carrying the queue depth (default: fits the
//                          whole manifest)
//   --faults SPEC          deterministic fault injection for chaos runs:
//                          seed=S,rate=R,sites=a+b (sites: engine_bdd,
//                          batch_pool, alloc, worker, cache_write,
//                          remote_stall); also read from EDA_FAULTS, the
//                          flag winning
//
// exit status: 0 every job ended EQUIV or NONEQUIV, 1 any job ended in a
// failure-class verdict (TIMEOUT, RESOURCE_EXHAUSTED, INTERNAL_ERROR,
// DEADLINE_EXPIRED, RETRY_LATER, INVALID_REQUEST, ...) or a gate was
// violated, 2 usage.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "kernel/parallel.h"
#include "service/admission.h"
#include "service/fault.h"
#include "service/manifest.h"
#include "service/sweep.h"
#include "service/verify_service.h"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "eda_service: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: eda_service (--manifest FILE | --sweep SPEC) [--jobs N]\n"
      "                   [--serial] [--no-shared-cache] [--incremental]\n"
      "                   [--no-sim] [--sim-vectors N] [--sim-seed S]\n"
      "                   [--no-batch-bdd] [--timeout S] [--json FILE]\n"
      "                   [--cache-file FILE] [--cache-server ADDR]\n"
      "                   [--cache-pool N] [--no-cache-batch]\n"
      "                   [--tenant NAME] [--require-cache-hits]\n"
      "                   [--max-retries N] [--deadline-ms N]\n"
      "                   [--queue-depth N] [--faults SPEC]\n");
  std::exit(2);
}

const char* status_of(const eda::service::JobResult& r) {
  if (!r.ok) return "ERROR";
  switch (r.verdict) {
    case eda::service::VerdictClass::Equiv:
      return "EQ";
    case eda::service::VerdictClass::Nonequiv:
      return "NEQ";
    default:
      // A failure-class (or unknown) verdict prints its wire name, so the
      // table says WHY a job has no answer.
      return eda::service::verdict_class_name(r.verdict);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eda;

  std::optional<std::string> manifest_path, sweep_spec, json_path,
      cache_path, cache_server, tenant, fault_spec;
  std::optional<double> timeout, deadline_ms;
  std::optional<std::size_t> queue_depth;
  unsigned jobs = 0;
  bool serial = false, share_cache = true, require_hits = false,
       incremental = false, use_sim = true, batch_bdd = true;
  int sim_vectors = 256;
  int max_retries = 2;
  int cache_pool = 4;
  bool cache_batch = true;
  std::optional<std::uint64_t> sim_seed;

  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    auto next = [&]() -> std::string {
      if (a + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++a];
    };
    try {
      // Strict numeric parsing throughout (full-token consumption), same
      // contract as the manifest/sweep parsers: --timeout 1O must not
      // silently become 1.0.
      std::size_t used = 0;
      if (arg == "--manifest") manifest_path = next();
      else if (arg == "--sweep") sweep_spec = next();
      else if (arg == "--jobs") {
        std::string v = next();
        int n = std::stoi(v, &used);
        if (used != v.size() || n < 1 || n > 1024) {
          usage("--jobs must be an integer in 1..1024");
        }
        jobs = static_cast<unsigned>(n);
      } else if (arg == "--serial") serial = true;
      else if (arg == "--no-shared-cache") share_cache = false;
      else if (arg == "--incremental") incremental = true;
      else if (arg == "--no-sim") use_sim = false;
      else if (arg == "--no-batch-bdd") batch_bdd = false;
      else if (arg == "--sim-vectors") {
        std::string v = next();
        int n = std::stoi(v, &used);
        if (used != v.size() || n < 1 || n > 1'000'000) {
          usage("--sim-vectors must be an integer in 1..1000000");
        }
        sim_vectors = n;
      } else if (arg == "--sim-seed") {
        std::string v = next();
        unsigned long long s = std::stoull(v, &used);
        if (used != v.size()) usage("--sim-seed must be an integer");
        sim_seed = static_cast<std::uint64_t>(s);
      } else if (arg == "--timeout") {
        std::string v = next();
        timeout = std::stod(v, &used);
        if (used != v.size() || !(*timeout > 0.0)) {
          usage("--timeout must be a positive number of seconds");
        }
      } else if (arg == "--json") json_path = next();
      else if (arg == "--cache-file") cache_path = next();
      else if (arg == "--cache-server") cache_server = next();
      else if (arg == "--cache-pool") {
        std::string v = next();
        int n = std::stoi(v, &used);
        if (used != v.size() || n < 1 || n > 64) {
          usage("--cache-pool must be an integer in 1..64");
        }
        cache_pool = n;
      } else if (arg == "--no-cache-batch") cache_batch = false;
      else if (arg == "--tenant") tenant = next();
      else if (arg == "--require-cache-hits") require_hits = true;
      else if (arg == "--max-retries") {
        std::string v = next();
        int n = std::stoi(v, &used);
        if (used != v.size() || n < 0 || n > 100) {
          usage("--max-retries must be an integer in 0..100");
        }
        max_retries = n;
      } else if (arg == "--deadline-ms") {
        std::string v = next();
        deadline_ms = std::stod(v, &used);
        if (used != v.size() || !(*deadline_ms > 0.0)) {
          usage("--deadline-ms must be a positive number of milliseconds");
        }
      } else if (arg == "--queue-depth") {
        std::string v = next();
        long n = std::stol(v, &used);
        if (used != v.size() || n < 1 || n > 1'000'000) {
          usage("--queue-depth must be an integer in 1..1000000");
        }
        queue_depth = static_cast<std::size_t>(n);
      } else if (arg == "--faults") fault_spec = next();
      else usage(("unknown option " + arg).c_str());
    } catch (const std::logic_error&) {
      // std::stoi / std::stod on malformed numbers.
      usage(("bad numeric value for " + arg).c_str());
    }
  }
  if (!manifest_path && !sweep_spec) usage("need --manifest or --sweep");
  if (manifest_path && sweep_spec) {
    usage("--manifest and --sweep are mutually exclusive");
  }

  std::vector<service::JobSpec> specs;
  try {
    if (manifest_path) {
      std::ifstream in(*manifest_path);
      if (!in) usage(("cannot open " + *manifest_path).c_str());
      specs = service::parse_manifest(in);
    } else {
      specs = service::make_sweep(service::parse_sweep_spec(*sweep_spec));
    }
  } catch (const service::ServiceError& e) {
    std::fprintf(stderr, "eda_service: %s\n", e.what());
    return 2;
  }
  if (specs.empty()) usage("no jobs in the manifest/sweep");
  if (timeout) {
    for (service::JobSpec& spec : specs) spec.timeout_sec = *timeout;
  }
  if (deadline_ms) {
    for (service::JobSpec& spec : specs) spec.deadline_ms = *deadline_ms;
  }

  // Fault injection: EDA_FAULTS first, --faults overriding — both must be
  // armed before any job can run.
  try {
    service::FaultInjector::instance().configure_from_env();
    if (fault_spec) {
      service::FaultInjector::instance().configure(*fault_spec);
    }
  } catch (const service::FaultSpecError& e) {
    usage(e.what());
  }

  service::ServiceOptions opts;
  // --serial keeps the pool minimal; run_one never schedules on it.
  opts.jobs = serial ? 1 : jobs;
  opts.cache.share = share_cache;
  opts.incremental = incremental;
  opts.sim.enabled = use_sim;
  opts.sim.vectors = sim_vectors;
  opts.batch_bdd = batch_bdd;
  opts.retry.max_retries = max_retries;
  if (sim_seed) opts.sim.seed = *sim_seed;
  if (cache_server) opts.cache.server = *cache_server;
  opts.cache.remote_pool = cache_pool;
  opts.cache.remote_batch = cache_batch;
  if (tenant) {
    opts.cache.tenant = *tenant;
    for (service::JobSpec& spec : specs) {
      if (spec.tenant.empty()) spec.tenant = *tenant;
    }
  }
  unsigned threads =
      serial ? 1 : (jobs == 0 ? kernel::default_thread_count() : jobs);
  std::printf(
      "eda_service: %zu job(s), %u stream(s), shared cache %s%s, sim "
      "pre-filter %s (%d vectors, seed %llu)%s\n\n",
      specs.size(), threads, share_cache ? "on" : "off",
      incremental ? ", incremental cones" : "",
      use_sim ? "on" : "off", sim_vectors,
      static_cast<unsigned long long>(opts.sim.seed),
      batch_bdd ? ", batched bdd" : "");
  if (service::FaultInjector::instance().enabled()) {
    std::printf("faults: armed (seed %llu, rate %.2f)\n\n",
                static_cast<unsigned long long>(
                    service::FaultInjector::instance().seed()),
                service::FaultInjector::instance().rate());
  }

  service::VerifyService svc(opts);
  if (cache_server) {
    service::ServiceStats st0 = svc.stats();
    if (st0.remote_failures > 0) {
      std::printf(
          "cache: daemon at %s unreachable — degraded to the in-process "
          "fallback (will re-probe with backoff)\n\n",
          cache_server->c_str());
    } else {
      std::printf("cache: connected to eda_cached at %s (tenant %s)\n\n",
                  cache_server->c_str(), opts.cache.tenant.c_str());
    }
  }
  if (cache_path) {
    // Warm start.  load_cache never throws: a bad file is a diagnosed
    // cold start, so a corrupted cache can never take the service down.
    service::CacheLoadResult lr = svc.load_cache(*cache_path);
    std::printf("cache: %s (%s)\n\n", lr.note.c_str(),
                cache_path->c_str());
    if (!share_cache) {
      std::printf(
          "cache: note: --no-shared-cache jobs never consult the loaded "
          "entries\n\n");
    }
  }
  std::vector<service::JobResult> results;
  if (serial) {
    for (const service::JobSpec& spec : specs) {
      results.push_back(svc.run_one(spec));
    }
  } else {
    // Jobs enter through the admission front: bounded queue,
    // priority/deadline scheduling, structured RETRY_LATER backpressure.
    // By default the queue is sized to the whole manifest; --queue-depth
    // shrinks it to exercise load shedding.
    service::AdmissionOptions aopts;
    aopts.max_depth =
        queue_depth ? *queue_depth
                    : std::max<std::size_t>(specs.size(), opts.queue.depth);
    aopts.streams = threads;
    aopts.tenant_weights = opts.queue.tenant_weights;
    service::AdmissionQueue queue(svc, aopts);
    std::vector<bool> accepted(specs.size(), false);
    std::vector<service::JobResult> shed(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      service::Admission ad = queue.try_submit(specs[i]);
      accepted[i] = ad.accepted;
      if (!ad.accepted) {
        service::JobResult r;
        r.circuit = specs[i].circuit;
        r.method = specs[i].method;
        r.tenant = specs[i].tenant;
        r.name = specs[i].name.empty()
                     ? specs[i].circuit + "/" +
                           service::method_name(specs[i].method)
                     : specs[i].name;
        r.ok = true;  // the service worked; it shed load as designed
        r.verdict = service::VerdictClass::RetryLater;
        r.error = ad.reason;
        svc.record_skipped(r);
        shed[i] = std::move(r);
      }
    }
    std::vector<service::JobResult> ran = queue.drain();
    std::size_t next = 0;
    results.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      results.push_back(accepted[i] ? std::move(ran[next++])
                                    : std::move(shed[i]));
    }
  }

  std::printf("%-28s %-6s %-5s %5s %7s %9s %9s %s\n", "name", "method",
              "stat", "ff", "gates", "synth_s", "verify_s", "cache");
  for (const service::JobResult& r : results) {
    std::string cache;
    if (r.theorem_cache_hit) cache += "thm ";
    if (r.result_cache_hit) cache += "res";
    if (r.cones > 0) {
      cache += " cones " + std::to_string(r.cone_hits) + "/" +
               std::to_string(r.cones) + " hit";
    }
    if (r.sim_refuted > 0) {
      cache += " sim-refuted " + std::to_string(r.sim_refuted) + " (" +
               std::to_string(r.sim_vectors) + " vec)";
    }
    if (r.attempts > 1) {
      cache += " attempts " + std::to_string(r.attempts) + " (backoff " +
               std::to_string(static_cast<long long>(r.backoff_ms)) +
               " ms)";
    }
    std::printf("%-28s %-6s %-5s %5d %7d %9.3f %9.3f %s\n", r.name.c_str(),
                service::method_name(r.method), status_of(r), r.ff, r.gates,
                r.synth_sec, r.verify_sec, cache.c_str());
    if (!r.counterexample.empty()) {
      std::printf("    ^ differs at output '%s'\n", r.counterexample.c_str());
    }
    if (!r.error.empty()) std::printf("    ^ %s\n", r.error.c_str());
  }

  service::ServiceStats st = svc.stats();
  std::printf(
      "\njobs %zu (failed %zu)  wall %.3f s  cpu %.3f s  throughput "
      "%.2f jobs/s\n",
      st.jobs, st.failed, st.wall_sec, st.cpu_sec,
      st.wall_sec > 0 ? static_cast<double>(st.jobs) / st.wall_sec : 0.0);
  std::printf("theorem cache: %llu hits / %llu misses (hit rate %.2f)\n",
              static_cast<unsigned long long>(st.theorems.hits),
              static_cast<unsigned long long>(st.theorems.misses),
              st.theorems.hit_rate());
  std::printf("result  cache: %llu hits / %llu misses (hit rate %.2f)\n",
              static_cast<unsigned long long>(st.results.hits),
              static_cast<unsigned long long>(st.results.misses),
              st.results.hit_rate());
  if (st.backend == "remote") {
    std::printf(
        "remote  cache: %llu round trip(s), %llu transport failure(s), "
        "%llu op(s) served locally while degraded\n",
        static_cast<unsigned long long>(st.remote_round_trips),
        static_cast<unsigned long long>(st.remote_failures),
        static_cast<unsigned long long>(st.degraded_ops));
  }

  // Results JSON before the cache save: the verdicts of a successful run
  // must reach their consumer even when persisting the cache fails (disk
  // full is a next-run-is-cold problem, not a this-run-never-happened
  // one).
  if (json_path) {
    std::ofstream out(*json_path);
    if (!out) {
      std::fprintf(stderr, "eda_service: cannot write %s\n",
                   json_path->c_str());
      return 1;
    }
    out << service::results_to_json(results, st, threads);
    std::printf("wrote %s\n", json_path->c_str());
  }

  bool save_failed = false;
  if (cache_path) {
    // Save on drain: every theorem/verdict proved in this run (plus what
    // was loaded) becomes the next run's warm start.
    try {
      svc.save_cache(*cache_path);
      std::printf("cache: saved %zu theorem(s), %zu verdict(s) to %s\n",
                  st.theorems.entries, st.results.entries,
                  cache_path->c_str());
    } catch (const service::CacheFileError& e) {
      std::fprintf(stderr, "eda_service: %s\n", e.what());
      save_failed = true;
    }
  }

  // Exit on classified verdicts, not just crashed jobs: a TIMEOUT or a
  // DEADLINE_EXPIRED is an unanswered obligation, and CI must see it.  A
  // completed NONEQUIV is an *answer* (exit 0 — the caller reads the
  // verdict, not the exit code, to learn which way it went).
  bool any_failed = save_failed;
  for (const service::JobResult& r : results) {
    if (!r.ok || service::verdict_is_failure(r.verdict)) any_failed = true;
  }
  if (require_hits && st.theorems.hits + st.results.hits == 0) {
    std::fprintf(stderr,
                 "eda_service: --require-cache-hits: no obligation was "
                 "served from the shared cache\n");
    return 1;
  }
  return any_failed ? 1 : 0;
}
