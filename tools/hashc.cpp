// hashc — the HASH formal-synthesis driver.
//
// A command-line front end over the library, the way a downstream user
// would script it:
//
//   hashc --kiss2 ctrl.kiss2 [--encoding binary|gray|onehot] <passes...>
//   hashc --demo fig2:8                                      <passes...>
//
// passes (applied left to right, each producing a theorem; the chain is
// composed by transitivity and printed at the end):
//   --minimize            FSM state minimisation (before synthesis; the
//                         unverified heuristic stage)
//   --retime-min-period   Leiserson–Saxe min-period labels, applied as
//                         formal elementary moves (both directions)
//   --retime-min-area     min-period, then min-area labels at that period
//   --xor-mask M          formal XOR re-encoding of every register with M
//   --strip-dead          formal dead-register elimination
//
// outputs:
//   --emit-blif FILE      write the bit-blasted result as BLIF
//   --emit-verilog FILE   write structural Verilog
//   --print-theorem       print the composed correctness theorem
//   --check               co-simulate input vs result (sanity oracle)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_gen/fig2.h"
#include "circuit/bitblast.h"
#include "fsm/encode.h"
#include "fsm/kiss2.h"
#include "fsm/minimize.h"
#include "hash/compound.h"
#include "hash/encode_step.h"
#include "hash/redundancy.h"
#include "io/blif.h"
#include "kernel/printer.h"
#include "retime/elementary.h"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "hashc: %s\n", msg);
  std::fprintf(stderr,
               "usage: hashc (--kiss2 FILE | --demo fig2:N) [--encoding E]\n"
               "             [--minimize] [--retime-min-period | "
               "--retime-min-area]\n"
               "             [--xor-mask M] [--strip-dead]\n"
               "             [--emit-blif FILE] [--emit-verilog FILE]\n"
               "             [--print-theorem] [--check]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eda;

  std::optional<std::string> kiss_path, demo;
  fsm::Encoding enc = fsm::Encoding::Binary;
  bool do_minimize = false, strip_dead = false, print_thm = false,
       check = false;
  std::optional<std::string> retime_mode;
  std::optional<std::uint64_t> xor_mask;
  std::optional<std::string> blif_out, verilog_out;

  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    auto next = [&]() -> std::string {
      if (a + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++a];
    };
    if (arg == "--kiss2") kiss_path = next();
    else if (arg == "--demo") demo = next();
    else if (arg == "--encoding") {
      std::string e = next();
      if (e == "binary") enc = fsm::Encoding::Binary;
      else if (e == "gray") enc = fsm::Encoding::Gray;
      else if (e == "onehot") enc = fsm::Encoding::OneHot;
      else usage("unknown encoding");
    } else if (arg == "--minimize") do_minimize = true;
    else if (arg == "--retime-min-period") retime_mode = "period";
    else if (arg == "--retime-min-area") retime_mode = "area";
    else if (arg == "--xor-mask") xor_mask = std::stoull(next(), nullptr, 0);
    else if (arg == "--strip-dead") strip_dead = true;
    else if (arg == "--emit-blif") blif_out = next();
    else if (arg == "--emit-verilog") verilog_out = next();
    else if (arg == "--print-theorem") print_thm = true;
    else if (arg == "--check") check = true;
    else usage(("unknown option " + arg).c_str());
  }

  // ---- front end -----------------------------------------------------------
  circuit::Rtl rtl;
  if (kiss_path) {
    std::ifstream in(*kiss_path);
    if (!in) usage(("cannot open " + *kiss_path).c_str());
    fsm::Fsm machine = fsm::parse_kiss2(in);
    std::printf("[front] KISS2: %d states, %zu rows\n",
                machine.state_count(), machine.transitions().size());
    if (do_minimize) {
      fsm::MinimizeResult m = fsm::minimize(machine);
      std::printf("[front] minimised to %d states (heuristic stage, "
                  "unverified)\n", m.fsm.state_count());
      machine = std::move(m.fsm);
    }
    rtl = fsm::synthesize(machine, enc);
    std::printf("[front] synthesised with %s encoding: %d comb nodes, "
                "%zu register(s)\n", fsm::encoding_name(enc),
                rtl.comb_node_count(), rtl.regs().size());
  } else if (demo) {
    int bits = 8;
    if (auto pos = demo->find(':'); pos != std::string::npos) {
      bits = std::stoi(demo->substr(pos + 1));
    }
    if (demo->rfind("fig2", 0) != 0) usage("unknown demo");
    rtl = eda::bench_gen::make_fig2(bits).rtl;
    std::printf("[front] demo fig2:%d — %d comb nodes, %zu register(s)\n",
                bits, rtl.comb_node_count(), rtl.regs().size());
  } else {
    usage("need --kiss2 or --demo");
  }
  circuit::Rtl original = rtl;

  // ---- formal passes -------------------------------------------------------
  std::vector<kernel::Thm> steps;
  if (retime_mode) {
    std::optional<retime::ChainResult> res =
        *retime_mode == "area" ? retime::formal_min_area_retime(rtl)
                               : retime::formal_min_period_retime(rtl);
    if (!res) {
      std::printf("[pass ] retiming needs a backward move with no feasible "
                  "initial state; skipped\n");
    } else {
      int before = retime::clock_period(rtl);
      int after = retime::clock_period(res->final_rtl);
      std::printf("[pass ] formal retiming (%s): clock period %d -> %d in "
                  "%d elementary move(s)\n", retime_mode->c_str(), before,
                  after, res->steps);
      rtl = res->final_rtl;
      if (res->steps > 0) steps.push_back(res->theorem);
    }
  }
  if (xor_mask) {
    std::vector<std::uint64_t> masks;
    for (circuit::SignalId r : rtl.regs()) {
      masks.push_back(*xor_mask & rtl.mask(r));
    }
    hash::FormalEncodeResult res = hash::formal_xor_reencode(rtl, masks);
    std::printf("[pass ] formal XOR re-encoding of %zu register(s) with "
                "mask 0x%llx\n", masks.size(),
                static_cast<unsigned long long>(*xor_mask));
    rtl = res.encoded;
    steps.push_back(res.theorem);
  }
  if (strip_dead) {
    auto dead = hash::find_dead_registers(rtl);
    if (dead.empty()) {
      std::printf("[pass ] no dead registers to strip\n");
    } else {
      hash::FormalDeadRemovalResult res =
          hash::formal_remove_dead_registers(rtl);
      std::printf("[pass ] formal dead-register elimination: removed "
                  "%zu register(s)\n", res.removed.size());
      rtl = res.stripped;
      steps.push_back(res.theorem);
    }
  }

  // ---- results -------------------------------------------------------------
  if (!steps.empty()) {
    kernel::Thm chain = hash::compose_chain(steps);
    std::printf("[done ] %zu formal step(s) composed; oracles:", steps.size());
    if (chain.oracles().empty()) std::printf(" none");
    for (const std::string& tag : chain.oracles()) {
      std::printf(" %s", tag.c_str());
    }
    std::printf("\n");
    if (print_thm) {
      std::printf("\n%s\n\n", kernel::pretty(chain).c_str());
    }
  } else {
    std::printf("[done ] no formal steps requested\n");
  }

  if (check) {
    bool ok = circuit::simulation_equivalent(original, rtl, 500, 1234);
    std::printf("[check] co-simulation vs input: %s\n",
                ok ? "EQUIVALENT" : "MISMATCH");
    if (!ok) return 1;
  }
  if (blif_out || verilog_out) {
    circuit::GateNetlist gates = circuit::bit_blast(rtl);
    std::printf("[emit ] bit-blasted: %d gates, %d flip-flops\n",
                gates.gate_count(), gates.ff_count());
    if (blif_out) {
      std::ofstream out(*blif_out);
      out << io::write_blif(gates, "hashc_out");
      std::printf("[emit ] BLIF -> %s\n", blif_out->c_str());
    }
    if (verilog_out) {
      std::ofstream out(*verilog_out);
      out << io::write_verilog(gates, "hashc_out");
      std::printf("[emit ] Verilog -> %s\n", verilog_out->c_str());
    }
  }
  return 0;
}
