#!/usr/bin/env python3
"""Chaos/fault-injection soundness gate for the verification service.

Generates seeded BLIF pairs with KNOWN ground truth (make_fuzz_pair) and
replays each through eda_service under a deterministic fault schedule
(--faults seed=S,rate=R,sites=...), in both the whole-pair and the
--incremental configuration.  The injector raises BDD pool failures,
allocation failures, worker-thread exceptions, batched-pool failures and
torn cache writes at the instrumented sites; the gate then asserts the
fault-tolerance contract:

  * ZERO wrong verdicts: every COMPLETED verdict must match the
    generator's ground truth — faults may cost answers, never corrupt
    them;
  * classified failures: a job without an answer must carry a
    failure-class verdict (TIMEOUT, RESOURCE_EXHAUSTED, INTERNAL_ERROR,
    ... or UNKNOWN), never a bare crash;
  * bounded retries: per-job attempts <= --max-retries + 1;
  * no crashes: exit status 0 or 1 only, never a signal or usage error.

A separate merge-on-save phase runs two CONCURRENT eda_service processes
against one --cache-file on disjoint corpora and then replays the union:
both verdicts must come back as cache hits, i.e. neither writer's entries
were lost to the save race.

A daemon-kill phase runs known-truth batches through --cache-server with
an eda_cached daemon that is SIGKILLed mid-batch — once with the
serialized --cache-pool 1 client and once with the pipelined
--cache-pool 4 batched client, a fresh daemon each — then a final batch
against a daemon address that never answered at all.  The remote tier is
an optimisation, never an authority: every run must complete every job
with the ground-truth verdict (failures classified, never wrong), and
the dead-from-the-start run must report the degradation it survived.

On failure, the case's BLIFs, manifest and service JSON land in
--out-dir (uploaded as a CI artifact); the printed seed and fault spec
reproduce the schedule bit-for-bit.

Exit status: 0 all schedules hold the contract, 1 any violation, 2 usage.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

EDITS = ["equivalent", "opaque", "different", "mixed"]
SITES = [
    "engine_bdd",
    "engine_bdd+alloc",
    "alloc+worker",
    "engine_bdd+batch_pool",
    "cache_write+engine_bdd",
]
RATES = [0.1, 0.3, 0.6]
MAX_RETRIES = 3
DEFAULT_SEED_BASE = 0xC4405

ANSWER_VERDICTS = {"EQUIV", "NONEQUIV"}
FAILURE_VERDICTS = {
    "TIMEOUT", "RESOURCE_EXHAUSTED", "INTERNAL_ERROR", "DEADLINE_EXPIRED",
    "RETRY_LATER", "INVALID_REQUEST", "UNKNOWN",
}


def ground_truth(build, case_dir, seed, edit, cones, timeout):
    gen = subprocess.run(
        [os.path.join(build, "make_fuzz_pair"), "--dir", case_dir,
         "--seed", str(seed), "--cones", str(cones), "--edit", edit],
        capture_output=True, text=True, timeout=timeout)
    if gen.returncode != 0:
        raise RuntimeError(f"make_fuzz_pair failed (rc={gen.returncode}): "
                           f"{gen.stderr.strip()}")
    truth = {}
    for line in gen.stdout.splitlines():
        for tok in line.split():
            k, _, v = tok.partition("=")
            if _:
                truth[k] = v
    return truth


def run_schedule(build, case_dir, seed, edit, fault, cones, timeout):
    """One fault schedule: the seeded pair under injection, whole-pair and
    incremental.  Returns (failures, artifacts)."""
    failures = []
    artifacts = []
    truth = ground_truth(build, case_dir, seed, edit, cones, timeout)
    expect_equiv = truth.get("expect") == "EQ"
    artifacts += [os.path.join(case_dir, n)
                  for n in ("a.blif", "b.blif", "pair.manifest")]

    for tag, extra in (("whole", []), ("inc", ["--incremental"])):
        out_json = os.path.join(case_dir, f"chaos_{tag}.json")
        artifacts.append(out_json)
        cmd = [os.path.join(build, "eda_service"),
               "--manifest", os.path.join(case_dir, "pair.manifest"),
               "--faults", fault, "--max-retries", str(MAX_RETRIES),
               "--json", out_json] + extra
        try:
            svc = subprocess.run(cmd, capture_output=True, text=True,
                                 timeout=timeout)
        except subprocess.TimeoutExpired:
            failures.append(f"[{tag}] eda_service hung (> {timeout}s)")
            continue
        if svc.returncode not in (0, 1):
            failures.append(
                f"[{tag}] eda_service crashed under faults "
                f"(rc={svc.returncode}): {svc.stderr.strip()[-500:]}")
            continue
        try:
            with open(out_json) as f:
                results = json.load(f)["results"]
        except (OSError, ValueError, KeyError) as e:
            failures.append(f"[{tag}] unreadable service JSON: {e}")
            continue
        if len(results) != 1:
            failures.append(f"[{tag}] expected 1 result, got {len(results)}")
            continue
        r = results[0]
        verdict = r.get("verdict", "")
        # The soundness core: a completed answer must match ground truth.
        if r["completed"] and r["equivalent"] != expect_equiv:
            failures.append(
                f"[{tag}] WRONG VERDICT under faults: service says "
                f"{'EQUIV' if r['equivalent'] else 'NONEQUIV'}, generator "
                f"says {truth.get('expect')}")
        if r["completed"] and verdict not in ANSWER_VERDICTS:
            failures.append(
                f"[{tag}] completed job carries non-answer verdict "
                f"{verdict!r}")
        if not r["completed"] and verdict not in FAILURE_VERDICTS:
            failures.append(
                f"[{tag}] unanswered job carries unclassified verdict "
                f"{verdict!r}")
        if r.get("attempts", 0) > MAX_RETRIES + 1:
            failures.append(
                f"[{tag}] retry bound violated: attempts={r['attempts']} "
                f"> max_retries+1={MAX_RETRIES + 1}")
        if svc.returncode == 0 and verdict not in ANSWER_VERDICTS:
            failures.append(
                f"[{tag}] exit 0 despite failure-class verdict {verdict!r}")
    return failures, artifacts


def run_merge_phase(build, tmp, seed, cones, timeout):
    """Two concurrent writers share one cache file on disjoint corpora;
    the union replay must hit the cache for BOTH — merge-on-save lost
    nothing.  Returns (failures, artifacts)."""
    failures = []
    artifacts = []
    cache = os.path.join(tmp, "shared_cache.bin")
    manifests = []
    for side in (0, 1):
        d = os.path.join(tmp, f"merge_{side}")
        truth = ground_truth(build, d, seed + side, "equivalent", cones,
                             timeout)
        if truth.get("expect") != "EQ":
            failures.append(f"[merge] generator broke: side {side} not EQ")
            return failures, artifacts
        manifests.append(os.path.join(d, "pair.manifest"))
        artifacts += [os.path.join(d, n) for n in ("a.blif", "b.blif",
                                                   "pair.manifest")]

    procs = []
    for side, manifest in enumerate(manifests):
        out_json = os.path.join(tmp, f"merge_writer{side}.json")
        artifacts.append(out_json)
        procs.append(subprocess.Popen(
            [os.path.join(build, "eda_service"), "--manifest", manifest,
             "--cache-file", cache, "--json", out_json],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True))
    for side, p in enumerate(procs):
        try:
            _, err = p.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            p.kill()
            failures.append(f"[merge] writer {side} hung")
            continue
        if p.returncode != 0:
            failures.append(f"[merge] writer {side} failed "
                            f"(rc={p.returncode}): {err.strip()[-300:]}")
    if failures:
        return failures, artifacts

    combined = os.path.join(tmp, "merge_union.manifest")
    with open(combined, "w") as out:
        for side, manifest in enumerate(manifests):
            with open(manifest) as f:
                # Re-label so the two jobs stay distinguishable in the JSON.
                out.write(f.read().replace("name=fuzz",
                                           f"name=fuzz{side}"))
    out_json = os.path.join(tmp, "merge_union.json")
    artifacts += [combined, out_json]
    svc = subprocess.run(
        [os.path.join(build, "eda_service"), "--manifest", combined,
         "--cache-file", cache, "--json", out_json],
        capture_output=True, text=True, timeout=timeout)
    if svc.returncode != 0:
        failures.append(f"[merge] union replay failed (rc={svc.returncode})")
        return failures, artifacts
    with open(out_json) as f:
        results = json.load(f)["results"]
    if len(results) != 2:
        failures.append(f"[merge] expected 2 union results, "
                        f"got {len(results)}")
        return failures, artifacts
    for r in results:
        if not r["completed"] or not r["equivalent"]:
            failures.append(f"[merge] union job {r['name']} lost its "
                            f"verdict: {r.get('verdict')}")
        if not r["result_cache_hit"]:
            failures.append(
                f"[merge] union job {r['name']} MISSED the shared cache — "
                f"a concurrent save dropped the other writer's entries")
    return failures, artifacts


def build_fleet_corpus(build, ddir, seed, cones, timeout, jobs):
    """A combined manifest of `jobs` known-truth pairs with mixed edits.
    Returns (expectations by job name, manifest path, artifacts)."""
    expect = {}
    artifacts = []
    combined = os.path.join(ddir, "fleet.manifest")
    with open(combined, "w") as out:
        for i in range(jobs):
            d = os.path.join(ddir, f"pair_{i}")
            edit = EDITS[i % len(EDITS)]
            truth = ground_truth(build, d, seed + i, edit, cones, timeout)
            name = f"fleet{i}"
            expect[name] = truth.get("expect") == "EQ"
            with open(os.path.join(d, "pair.manifest")) as f:
                out.write(f.read().replace("name=fuzz", f"name={name}"))
            artifacts += [os.path.join(d, n)
                          for n in ("a.blif", "b.blif", "pair.manifest")]
    artifacts.append(combined)
    return expect, combined, artifacts


def check_fleet_run(tag, svc, out_json, expect, failures):
    """The remote-tier soundness contract for one batch: no crash, every
    completed verdict matches ground truth, the rest classified."""
    if svc.returncode not in (0, 1):
        failures.append(f"[{tag}] eda_service crashed (rc={svc.returncode})")
        return None
    try:
        with open(out_json) as f:
            run = json.load(f)
    except (OSError, ValueError) as e:
        failures.append(f"[{tag}] unreadable service JSON: {e}")
        return None
    results = run.get("results", [])
    if len(results) != len(expect):
        failures.append(f"[{tag}] expected {len(expect)} results, "
                        f"got {len(results)}")
        return run
    for r in results:
        verdict = r.get("verdict", "")
        if r["completed"]:
            if r["equivalent"] != expect.get(r["name"]):
                failures.append(
                    f"[{tag}] WRONG VERDICT for {r['name']} with a dying "
                    f"cache daemon: service says "
                    f"{'EQUIV' if r['equivalent'] else 'NONEQUIV'}")
            if verdict not in ANSWER_VERDICTS:
                failures.append(f"[{tag}] completed job {r['name']} carries "
                                f"non-answer verdict {verdict!r}")
        elif verdict not in FAILURE_VERDICTS:
            failures.append(f"[{tag}] unanswered job {r['name']} carries "
                            f"unclassified verdict {verdict!r}")
    return run


def run_daemon_kill_phase(build, tmp, seed, cones, timeout):
    """The remote cache tier under daemon loss: batches whose eda_cached
    is SIGKILLed mid-flight — once through the serialized pool=1 client
    and once through the pipelined pool=4 batched client, each against a
    fresh daemon — plus one batch against a daemon that never existed.
    Verdicts must stay ground-truth sound every way.  Returns
    (failures, artifacts)."""
    failures = []
    ddir = os.path.join(tmp, "daemon_kill")
    os.makedirs(ddir, exist_ok=True)
    expect, manifest, artifacts = build_fleet_corpus(
        build, ddir, seed, cones, timeout, jobs=8)

    for pool in (1, 4):
        tag = f"daemon-kill-pool{pool}"
        sock = os.path.join(ddir, f"cached_pool{pool}.sock")
        daemon = subprocess.Popen(
            [os.path.join(build, "eda_cached"), "--socket", sock],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            for _ in range(100):
                if os.path.exists(sock):
                    break
                time.sleep(0.05)
            else:
                failures.append(f"[{tag}] eda_cached never bound its "
                                "socket")
                continue

            out_json = os.path.join(ddir, f"daemon_kill_pool{pool}.json")
            artifacts.append(out_json)
            svc = subprocess.Popen(
                [os.path.join(build, "eda_service"), "--manifest", manifest,
                 "--jobs", "2", "--cache-server", "unix:" + sock,
                 "--cache-pool", str(pool), "--json", out_json],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            time.sleep(1.0)  # let the batch get going, then pull the plug
            daemon.kill()
            daemon.wait()
            try:
                svc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                svc.kill()
                failures.append(f"[{tag}] eda_service hung after the "
                                "daemon was killed mid-batch")
                return failures, artifacts
            check_fleet_run(tag, svc, out_json, expect, failures)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    # Dead from the very start: degradation must be immediate, visible in
    # the accounting, and cost nothing but the round trips.
    out_json = os.path.join(ddir, "daemon_dead.json")
    artifacts.append(out_json)
    svc = subprocess.run(
        [os.path.join(build, "eda_service"), "--manifest", manifest,
         "--jobs", "2",
         "--cache-server", "unix:" + os.path.join(ddir, "never.sock"),
         "--json", out_json],
        capture_output=True, text=True, timeout=timeout)
    run = check_fleet_run("daemon-dead", svc, out_json, expect, failures)
    if run is not None:
        if run.get("backend") != "remote":
            failures.append(f"[daemon-dead] backend is "
                            f"{run.get('backend')!r}, expected 'remote'")
        if run.get("remote_failures", 0) < 1:
            failures.append("[daemon-dead] no transport failure recorded "
                            "against a daemon that never existed")
    return failures, artifacts


def main():
    ap = argparse.ArgumentParser(
        description="chaos-test eda_service under deterministic fault "
                    "injection")
    ap.add_argument("--build-dir", default="build",
                    help="directory holding make_fuzz_pair and eda_service")
    ap.add_argument("--schedules", type=int, default=24,
                    help="number of fault schedules (default 24)")
    ap.add_argument("--cones", type=int, default=16,
                    help="output cones per generated pair (default 16)")
    ap.add_argument("--seed-base", type=lambda s: int(s, 0), default=None,
                    help="first seed; default EDA_SEED env or 0xc4405")
    ap.add_argument("--timeout", type=float, default=180.0,
                    help="per-process timeout in seconds")
    ap.add_argument("--out-dir", default="chaos_artifacts",
                    help="where failing schedules' repro files are kept")
    ap.add_argument("--skip-merge", action="store_true",
                    help="skip the two-writer merge-on-save phase")
    ap.add_argument("--skip-daemon", action="store_true",
                    help="skip the kill-eda_cached-mid-batch phase")
    args = ap.parse_args()

    base = args.seed_base
    if base is None:
        try:
            base = int(os.environ.get("EDA_SEED", ""), 0)
        except ValueError:
            base = DEFAULT_SEED_BASE
    print(f"chaos_service: {args.schedules} fault schedules from seed base "
          f"{base}, {args.cones}-cone pairs, max_retries={MAX_RETRIES}")

    for tool in ("make_fuzz_pair", "eda_service"):
        path = os.path.join(args.build_dir, tool)
        if not (os.path.exists(path) or os.path.exists(path + ".exe")):
            print(f"chaos_service: {path} not found (build first)",
                  file=sys.stderr)
            return 2

    failed = []
    with tempfile.TemporaryDirectory(prefix="chaos_service.") as tmp:
        for i in range(args.schedules):
            seed = base + i
            edit = EDITS[i % len(EDITS)]
            sites = SITES[i % len(SITES)]
            rate = RATES[i % len(RATES)]
            fault = f"seed={seed},rate={rate},sites={sites}"
            case_dir = os.path.join(tmp, f"sched_{seed}")
            try:
                failures, artifacts = run_schedule(
                    args.build_dir, case_dir, seed, edit, fault,
                    args.cones, args.timeout)
            except (RuntimeError, subprocess.TimeoutExpired) as e:
                failures, artifacts = [str(e)], []
            if failures:
                failed.append((seed, edit, fault))
                keep = os.path.join(args.out_dir, f"sched_{seed}")
                os.makedirs(keep, exist_ok=True)
                for path in artifacts:
                    if os.path.exists(path):
                        shutil.copy(path, keep)
                print(f"FAIL seed={seed} edit={edit} faults='{fault}'  "
                      f"(repro files in {keep})")
                for f in failures:
                    print(f"     {f}")
            else:
                print(f"ok   seed={seed} edit={edit} faults='{fault}'")

        if not args.skip_merge:
            try:
                failures, artifacts = run_merge_phase(
                    args.build_dir, tmp, base + 100_000, args.cones,
                    args.timeout)
            except (RuntimeError, subprocess.TimeoutExpired) as e:
                failures, artifacts = [str(e)], []
            if failures:
                failed.append((base + 100_000, "merge", "-"))
                keep = os.path.join(args.out_dir, "merge")
                os.makedirs(keep, exist_ok=True)
                for path in artifacts:
                    if os.path.exists(path):
                        shutil.copy(path, keep)
                print(f"FAIL merge-on-save phase (repro files in {keep})")
                for f in failures:
                    print(f"     {f}")
            else:
                print("ok   merge-on-save: 2 concurrent writers, "
                      "union preserved")

        if not args.skip_daemon:
            try:
                failures, artifacts = run_daemon_kill_phase(
                    args.build_dir, tmp, base + 200_000, args.cones,
                    args.timeout)
            except (RuntimeError, subprocess.TimeoutExpired) as e:
                failures, artifacts = [str(e)], []
            if failures:
                failed.append((base + 200_000, "daemon-kill", "-"))
                keep = os.path.join(args.out_dir, "daemon_kill")
                os.makedirs(keep, exist_ok=True)
                for path in artifacts:
                    if os.path.exists(path):
                        shutil.copy(path, keep)
                print(f"FAIL daemon-kill phase (repro files in {keep})")
                for f in failures:
                    print(f"     {f}")
            else:
                print("ok   daemon-kill: eda_cached SIGKILLed mid-batch "
                      "and absent entirely; every verdict ground-truth "
                      "sound, failures classified")

    if failed:
        print(f"\nchaos_service: {len(failed)} schedule(s) VIOLATED the "
              f"fault-tolerance contract:")
        for seed, edit, fault in failed:
            print(f"  seed={seed} edit={edit} faults='{fault}'")
        return 1
    print(f"chaos_service: all {args.schedules} schedules "
          f"(+ merge phase) hold: no wrong verdicts, bounded retries, "
          f"classified failures")
    return 0


if __name__ == "__main__":
    sys.exit(main())
