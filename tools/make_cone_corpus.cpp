// make_cone_corpus — deterministic multi-cone BLIF corpus for the CI
// incremental smoke gate.
//
//   make_cone_corpus --dir DIR [--cones N] [--seed S]
//
// Writes into DIR:
//   base_a.blif     N-cone random design A
//   base_b.blif     A with an opaque-equivalent edit in EVERY cone (so a
//                   cold A-vs-B check must genuinely prove all N cones)
//   edit_b.blif     base_b with ONE more equivalent edit in cone 0 — the
//                   "engineer touched one output" replay input
//   cold.manifest   blif:base_a,base_b eijk
//   edit.manifest   blif:base_a,edit_b eijk
//
// CI runs cold.manifest with --incremental --cache-file, then
// edit.manifest against the saved cache, and asserts (check_warm_start.py
// --incremental) that exactly one cone was re-proved.
//
// exit status: 0 ok, 1 I/O failure, 2 usage.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "io/blif.h"
#include "testlib/gen.h"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "make_cone_corpus: %s\n", msg);
  std::fprintf(stderr,
               "usage: make_cone_corpus --dir DIR [--cones N] [--seed S]\n");
  std::exit(2);
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  int cones = 8;
  std::uint64_t seed = 20260808;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    auto next = [&]() -> std::string {
      if (a + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++a];
    };
    if (arg == "--dir") {
      dir = next();
    } else if (arg == "--cones") {
      cones = std::stoi(next());
      if (cones < 2 || cones > 64) usage("--cones must be in 2..64");
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (dir.empty()) usage("need --dir");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // ok if it already exists
  if (ec) {
    std::fprintf(stderr, "make_cone_corpus: cannot create %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return 1;
  }

  using eda::testlib::ConeEdit;
  eda::circuit::GateNetlist a = eda::testlib::random_netlist_multi(
      seed, /*inputs=*/6, /*gates=*/10 * cones, /*ffs=*/4, cones);
  eda::circuit::GateNetlist b = a;
  for (int i = 0; i < cones; ++i) {
    b = eda::testlib::mutate_cone(b, static_cast<std::size_t>(i),
                                  ConeEdit::EquivalentOpaque);
  }
  eda::circuit::GateNetlist edit =
      eda::testlib::mutate_cone(b, 0, ConeEdit::Equivalent);

  const std::string a_path = dir + "/base_a.blif";
  const std::string b_path = dir + "/base_b.blif";
  const std::string e_path = dir + "/edit_b.blif";
  bool ok = write_file(a_path, eda::io::write_blif(a, "base_a")) &&
            write_file(b_path, eda::io::write_blif(b, "base_b")) &&
            write_file(e_path, eda::io::write_blif(edit, "edit_b")) &&
            write_file(dir + "/cold.manifest",
                       "blif:" + a_path + "," + b_path +
                           " eijk timeout=60 name=cold\n") &&
            write_file(dir + "/edit.manifest",
                       "blif:" + a_path + "," + e_path +
                           " eijk timeout=60 name=edit\n");
  if (!ok) {
    std::fprintf(stderr, "make_cone_corpus: cannot write into %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf("make_cone_corpus: %d cones, seed %llu -> %s\n", cones,
              static_cast<unsigned long long>(seed), dir.c_str());
  return 0;
}
