#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh benchmark JSON against the
committed baseline and fail if any metric regressed.

Usage:
    bench_compare.py --baseline bench/baselines/BENCH_kernel.baseline.json \
        --current BENCH_kernel.json [--threshold 15]
    bench_compare.py --baseline bench/baselines/BENCH_service.baseline.json \
        --current BENCH_service.json --section service_metrics \
        --higher-is-better --threshold 40 --floor-ns 0.1

The compared metrics live in the flat dict named by --section (default
micro_ns_per_op).  By default lower is better (latencies); with
--higher-is-better the direction flips (ratios, speedups, throughput).
Exit status 1 when any metric is more than --threshold percent worse than
the baseline, or when a baseline metric disappeared from the current run
(a silently dropped benchmark must not pass the gate).  Regressions
smaller than --floor-ns in absolute terms are ignored: tiny metrics
jitter past any percentage threshold on shared runners.
Better-than-baseline results are reported; refresh the baseline in a
dedicated PR when an optimisation makes them permanent (see
bench/baselines/ for provenance).
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="max allowed regression, percent (default 15)")
    parser.add_argument("--floor-ns", type=float, default=0.5,
                        help="ignore regressions smaller than this in "
                             "absolute metric units (default 0.5)")
    parser.add_argument("--section", default="micro_ns_per_op",
                        help="name of the flat metric dict to compare "
                             "(default micro_ns_per_op)")
    parser.add_argument("--higher-is-better", action="store_true",
                        help="larger metric values are better (ratios, "
                             "speedups) — the regression direction flips")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    base_metrics = baseline.get(args.section, {})
    cur_metrics = current.get(args.section, {})
    if not base_metrics:
        print(f"bench_compare: baseline has no {args.section} section")
        return 1

    failures = []
    print(f"{'metric':<32} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name, base_v in sorted(base_metrics.items()):
        if name not in cur_metrics:
            print(f"{name:<32} {base_v:>12.1f} {'MISSING':>12}")
            failures.append(f"{name}: missing from current run")
            continue
        cur_v = cur_metrics[name]
        delta = (cur_v - base_v) / base_v * 100.0
        # Signed "worseness": positive when the current value is on the
        # bad side of the baseline for this metric's direction.
        worse_pct = -delta if args.higher_is_better else delta
        worse_abs = base_v - cur_v if args.higher_is_better else cur_v - base_v
        flag = ""
        if worse_pct > args.threshold and worse_abs > args.floor_ns:
            flag = "  << REGRESSION"
            failures.append(f"{name}: {base_v:.1f} -> {cur_v:.1f} "
                            f"({worse_pct:+.1f}% worse > "
                            f"{args.threshold:.0f}%)")
        print(f"{name:<32} {base_v:>12.1f} {cur_v:>12.1f} "
              f"{delta:>+7.1f}%{flag}")
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        print(f"{name:<32} {'(new)':>12} {cur_metrics[name]:>12.1f}")

    if failures:
        print(f"\nbench_compare: {len(failures)} metric(s) regressed "
              f"beyond {args.threshold:.0f}%:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbench_compare: all {len(base_metrics)} {args.section} "
          f"metrics within {args.threshold:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
