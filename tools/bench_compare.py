#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_kernel.json against the
committed baseline and fail if any micro metric regressed.

Usage:
    bench_compare.py --baseline bench/baselines/BENCH_kernel.baseline.json \
        --current BENCH_kernel.json [--threshold 15]

Exit status 1 when any `micro_ns_per_op` metric is more than --threshold
percent slower than the baseline, or when a baseline metric disappeared
from the current run (a silently dropped benchmark must not pass the gate).
Faster-than-baseline results are reported; refresh the baseline in a
dedicated PR when an optimisation makes them permanent (see
bench/baselines/ for provenance).
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="max allowed regression, percent (default 15)")
    parser.add_argument("--floor-ns", type=float, default=0.5,
                        help="ignore regressions smaller than this many "
                             "ns/op in absolute terms (default 0.5): "
                             "sub-ns metrics like a pointer-compare "
                             "equality check jitter past any percentage "
                             "threshold on shared runners")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    base_micro = baseline.get("micro_ns_per_op", {})
    cur_micro = current.get("micro_ns_per_op", {})
    if not base_micro:
        print("bench_compare: baseline has no micro_ns_per_op section")
        return 1

    failures = []
    print(f"{'metric':<32} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name, base_ns in sorted(base_micro.items()):
        if name not in cur_micro:
            print(f"{name:<32} {base_ns:>12.1f} {'MISSING':>12}")
            failures.append(f"{name}: missing from current run")
            continue
        cur_ns = cur_micro[name]
        delta = (cur_ns - base_ns) / base_ns * 100.0
        flag = ""
        if delta > args.threshold and cur_ns - base_ns > args.floor_ns:
            flag = "  << REGRESSION"
            failures.append(f"{name}: {base_ns:.1f} -> {cur_ns:.1f} ns/op "
                            f"(+{delta:.1f}% > {args.threshold:.0f}%)")
        print(f"{name:<32} {base_ns:>12.1f} {cur_ns:>12.1f} "
              f"{delta:>+7.1f}%{flag}")
    for name in sorted(set(cur_micro) - set(base_micro)):
        print(f"{name:<32} {'(new)':>12} {cur_micro[name]:>12.1f}")

    if failures:
        print(f"\nbench_compare: {len(failures)} metric(s) regressed "
              f"beyond {args.threshold:.0f}%:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbench_compare: all {len(base_micro)} micro metrics within "
          f"{args.threshold:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
