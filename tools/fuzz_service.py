#!/usr/bin/env python3
"""Continuous fuzz/soundness gate for the verification service.

Generates seeded BLIF pairs with KNOWN ground truth (make_fuzz_pair:
testlib random_netlist_multi + per-cone edits with known semantics) and
pushes each through eda_service in four configurations:

    whole-pair            whole-pair --no-sim
    --incremental         --incremental --no-sim

failing the run if ANY configuration crashes, hangs, or disagrees with
the generator's ground truth.  The sim-vs-no-sim axis is the soundness
gate for the bit-parallel pre-filter (a refutation the engine would not
have produced is a lane-semantics bug); the incremental axis runs the
same obligations through cone decomposition and the batched BDD kernel,
so the two engines cross-check each other on every case.

Counterexample names are checked for *presence*, not exact spelling:
with several edited cones the simulator may legitimately surface a
different output than the generator's first edit.  But a sim-refuted
NONEQUIV verdict with no concrete counterexample is a reporting bug and
fails.

On failure the case's BLIFs, manifest and all service JSON land in
--out-dir (uploaded as a CI artifact); the printed seed reproduces the
case exactly:

    build/make_fuzz_pair --dir repro --seed <seed> --edit <edit>

Exit status: 0 all cases agree, 1 any disagreement/crash, 2 usage.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

EDITS = ["equivalent", "opaque", "different", "mixed"]
DEFAULT_SEED_BASE = 0x5EEDF17E


def run_case(build, case_dir, seed, edit, timeout):
    """Returns (failures, artifacts) for one seeded case; artifacts is a
    list of file paths worth keeping when failures is non-empty."""
    failures = []
    artifacts = []

    gen = subprocess.run(
        [os.path.join(build, "make_fuzz_pair"), "--dir", case_dir,
         "--seed", str(seed), "--edit", edit],
        capture_output=True, text=True, timeout=timeout)
    if gen.returncode != 0:
        return ([f"make_fuzz_pair failed (rc={gen.returncode}): "
                 f"{gen.stderr.strip()}"], artifacts)
    truth = {}
    for line in gen.stdout.splitlines():
        if "=" in line:
            for tok in line.split():
                k, _, v = tok.partition("=")
                truth[k] = v
    expect_equiv = truth.get("expect") == "EQ"
    artifacts += [os.path.join(case_dir, n)
                  for n in ("a.blif", "b.blif", "pair.manifest")]

    configs = [
        ("sim", []),
        ("nosim", ["--no-sim"]),
        ("inc_sim", ["--incremental"]),
        ("inc_nosim", ["--incremental", "--no-sim"]),
    ]
    for tag, extra in configs:
        out_json = os.path.join(case_dir, f"result_{tag}.json")
        artifacts.append(out_json)
        cmd = [os.path.join(build, "eda_service"),
               "--manifest", os.path.join(case_dir, "pair.manifest"),
               "--json", out_json] + extra
        try:
            svc = subprocess.run(cmd, capture_output=True, text=True,
                                 timeout=timeout)
        except subprocess.TimeoutExpired:
            failures.append(f"[{tag}] eda_service hung (> {timeout}s)")
            continue
        # rc 1 is eda_service's documented "some job failed" status — the
        # JSON check below reports the specific job; anything else
        # (usage rc 2, signals rc < 0) is a crash/driver bug.
        if svc.returncode not in (0, 1):
            failures.append(
                f"[{tag}] eda_service crashed (rc={svc.returncode}): "
                f"{svc.stderr.strip()[-500:]}")
            continue
        try:
            with open(out_json) as f:
                results = json.load(f)["results"]
        except (OSError, ValueError, KeyError) as e:
            failures.append(f"[{tag}] unreadable service JSON: {e}")
            continue
        if len(results) != 1:
            failures.append(f"[{tag}] expected 1 result, got {len(results)}")
            continue
        r = results[0]
        if not r["ok"] or not r["completed"]:
            failures.append(
                f"[{tag}] job did not complete: ok={r['ok']} "
                f"completed={r['completed']} error={r.get('error', '')!r}")
            continue
        if r["equivalent"] != expect_equiv:
            failures.append(
                f"[{tag}] VERDICT DISAGREES with ground truth: service says "
                f"{'EQUIV' if r['equivalent'] else 'NONEQUIV'}, generator "
                f"says {truth.get('expect')}")
        if "nosim" in tag and r.get("sim_refuted", 0) > 0:
            failures.append(
                f"[{tag}] sim_refuted={r['sim_refuted']} although the "
                f"pre-filter was disabled")
        if r.get("sim_refuted", 0) > 0 and not r.get("counterexample"):
            failures.append(
                f"[{tag}] sim-refuted verdict carries no concrete "
                f"counterexample")
    return (failures, artifacts)


def main():
    ap = argparse.ArgumentParser(
        description="fuzz eda_service against known-truth seeded pairs")
    ap.add_argument("--build-dir", default="build",
                    help="directory holding make_fuzz_pair and eda_service")
    ap.add_argument("--cases", type=int, default=24,
                    help="number of seeded cases (default 24)")
    ap.add_argument("--seed-base", type=lambda s: int(s, 0), default=None,
                    help="first seed; default EDA_SEED env or 0x5eedf17e")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="per-process timeout in seconds")
    ap.add_argument("--out-dir", default="fuzz_artifacts",
                    help="where failing cases' repro files are kept")
    args = ap.parse_args()

    base = args.seed_base
    if base is None:
        try:
            base = int(os.environ.get("EDA_SEED", ""), 0)
        except ValueError:
            base = DEFAULT_SEED_BASE
    print(f"fuzz_service: {args.cases} cases from seed base {base} "
          f"(override with EDA_SEED or --seed-base)")

    for tool in ("make_fuzz_pair", "eda_service"):
        path = os.path.join(args.build_dir, tool)
        if not (os.path.exists(path) or os.path.exists(path + ".exe")):
            print(f"fuzz_service: {path} not found (build first)",
                  file=sys.stderr)
            return 2

    failed_seeds = []
    with tempfile.TemporaryDirectory(prefix="fuzz_service.") as tmp:
        for i in range(args.cases):
            seed = base + i
            edit = EDITS[i % len(EDITS)]
            case_dir = os.path.join(tmp, f"case_{seed}")
            try:
                failures, artifacts = run_case(
                    args.build_dir, case_dir, seed, edit, args.timeout)
            except subprocess.TimeoutExpired:
                failures, artifacts = ["make_fuzz_pair hung"], []
            if failures:
                failed_seeds.append((seed, edit))
                keep = os.path.join(args.out_dir, f"seed_{seed}_{edit}")
                os.makedirs(keep, exist_ok=True)
                for path in artifacts:
                    if os.path.exists(path):
                        shutil.copy(path, keep)
                print(f"FAIL seed={seed} edit={edit}  "
                      f"(repro files in {keep})")
                for f in failures:
                    print(f"     {f}")
            else:
                print(f"ok   seed={seed} edit={edit}")

    if failed_seeds:
        print(f"\nfuzz_service: {len(failed_seeds)}/{args.cases} cases "
              f"FAILED: " +
              ", ".join(f"{s} ({e})" for s, e in failed_seeds))
        print("reproduce one with: "
              f"{args.build_dir}/make_fuzz_pair --dir repro "
              f"--seed <seed> --edit <edit>")
        return 1
    print(f"fuzz_service: all {args.cases} cases agree with ground truth")
    return 0


if __name__ == "__main__":
    sys.exit(main())
