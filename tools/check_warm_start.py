#!/usr/bin/env python3
"""Assert a warm-started eda_service run actually ran warm.

Usage:
    check_warm_start.py SERVICE_warm.json [--min-hit-rate 0.9]

SERVICE_warm.json is the --json output of the SECOND eda_service run
against one --cache-file: every retiming-theorem goal it meets was proved
by the first run and persisted, so its theorem cache must show zero misses
and a hit rate at least --min-hit-rate.  Verdict misses are NOT gated: an
engine run that blew its resource budget is deliberately never cached
(machine state, not a goal property), so a slow first run legitimately
leaves verdicts to retry.
"""

import argparse
import json


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("service_json")
    parser.add_argument("--min-hit-rate", type=float, default=0.9)
    args = parser.parse_args()

    with open(args.service_json) as f:
        run = json.load(f)
    theorems = run.get("theorem_cache")
    if theorems is None:
        print("check_warm_start: no theorem_cache section in",
              args.service_json)
        return 1

    misses = theorems.get("misses", -1)
    hit_rate = theorems.get("hit_rate", 0.0)
    print(f"check_warm_start: theorem cache {theorems.get('hits', 0)} "
          f"hit(s) / {misses} miss(es), hit rate {hit_rate:.2f}")
    if misses != 0:
        print(f"check_warm_start: FAIL — warm run re-proved {misses} "
              f"goal(s) the cache file should have served")
        return 1
    if hit_rate < args.min_hit_rate:
        print(f"check_warm_start: FAIL — hit rate {hit_rate:.2f} < "
              f"{args.min_hit_rate:.2f} (did the warm run submit any RTL "
              f"jobs at all?)")
        return 1
    print("check_warm_start: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
