#!/usr/bin/env python3
"""Assert a warm-started eda_service run actually ran warm.

Usage:
    check_warm_start.py SERVICE_warm.json [--min-hit-rate 0.9]
    check_warm_start.py SERVICE_edit.json --incremental --expect-reproved 1

SERVICE_warm.json is the --json output of the SECOND eda_service run
against one --cache-file: every retiming-theorem goal it meets was proved
by the first run and persisted, so its theorem cache must show zero misses
and a hit rate at least --min-hit-rate.  Verdict misses are NOT gated: an
engine run that blew its resource budget is deliberately never cached
(machine state, not a goal property), so a slow first run legitimately
leaves verdicts to retry.

With --incremental the gate changes to the cone-partitioned path: the run
is the replay of an edited design against the cache the unedited run
saved, so across all jobs exactly --expect-reproved cones may have been
re-proved and every other cone must have been served from the verdict
cache (and zero theorem misses, as above — blif-pair jobs never touch the
theorem cache at all).
"""

import argparse
import json


def check_incremental(run: dict, expect_reproved: int) -> int:
    results = run.get("results")
    if not results:
        print("check_warm_start: no results section")
        return 1
    cones = sum(r.get("cones", 0) for r in results)
    hits = sum(r.get("cone_hits", 0) for r in results)
    reproved = sum(r.get("cones_reproved", 0) for r in results)
    print(f"check_warm_start: {cones} cone(s) across {len(results)} "
          f"job(s): {hits} cache hit(s), {reproved} re-proved")
    if cones == 0:
        print("check_warm_start: FAIL — no cone accounting in the results "
              "(was the run started with --incremental?)")
        return 1
    if reproved != expect_reproved:
        print(f"check_warm_start: FAIL — {reproved} cone(s) re-proved, "
              f"expected exactly {expect_reproved} (an unchanged cone "
              f"missed the cache, or a changed one hit it)")
        return 1
    if hits != cones - expect_reproved:
        print(f"check_warm_start: FAIL — {hits} hit(s) for "
              f"{cones - expect_reproved} unchanged cone(s)")
        return 1
    theorems = run.get("theorem_cache", {})
    if theorems.get("misses", 0) != 0:
        print(f"check_warm_start: FAIL — {theorems.get('misses')} theorem "
              f"miss(es) on a blif-pair replay")
        return 1
    print("check_warm_start: OK (incremental)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("service_json")
    parser.add_argument("--min-hit-rate", type=float, default=0.9)
    parser.add_argument("--incremental", action="store_true",
                        help="gate on per-cone accounting instead of the "
                             "theorem cache")
    parser.add_argument("--expect-reproved", type=int, default=1,
                        help="with --incremental: exact number of cones "
                             "the replay may re-prove (default 1)")
    args = parser.parse_args()

    with open(args.service_json) as f:
        run = json.load(f)

    if args.incremental:
        return check_incremental(run, args.expect_reproved)

    theorems = run.get("theorem_cache")
    if theorems is None:
        print("check_warm_start: no theorem_cache section in",
              args.service_json)
        return 1

    misses = theorems.get("misses", -1)
    hit_rate = theorems.get("hit_rate", 0.0)
    print(f"check_warm_start: theorem cache {theorems.get('hits', 0)} "
          f"hit(s) / {misses} miss(es), hit rate {hit_rate:.2f}")
    if misses != 0:
        print(f"check_warm_start: FAIL — warm run re-proved {misses} "
              f"goal(s) the cache file should have served")
        return 1
    if hit_rate < args.min_hit_rate:
        print(f"check_warm_start: FAIL — hit rate {hit_rate:.2f} < "
              f"{args.min_hit_rate:.2f} (did the warm run submit any RTL "
              f"jobs at all?)")
        return 1
    print("check_warm_start: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
