// make_fuzz_pair — one seeded BLIF pair with KNOWN ground truth, for the
// CI fuzz/soundness gate (tools/fuzz_service.py).
//
//   make_fuzz_pair --dir DIR --seed S [--cones N]
//                  [--edit equivalent|opaque|different|mixed]
//
// Builds an N-cone random design (testlib random_netlist_multi) and a
// B side derived from it by per-cone edits with known semantics
// (testlib mutate_cone):
//
//   equivalent   double inverter in every cone          -> EQUIV
//   opaque       absorption redundancy in every cone    -> EQUIV, but
//                opaque to syntactic folding AND to simulation: every
//                cone must reach a real engine
//   different    single inverter in one seeded cone     -> NONEQUIV
//   mixed        seeded per-cone draw over all three    -> computed
//
// Writes DIR/a.blif, DIR/b.blif and DIR/pair.manifest, and prints the
// ground truth as `expect=EQ` or `expect=NEQ` (plus, for NONEQUIV, the
// first edited output as `expect_output=NAME`) for the driver to compare
// against the service verdict.  The same seed always reproduces the same
// pair — a failing seed IS the repro.
//
// exit status: 0 ok, 1 I/O failure, 2 usage.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <system_error>

#include "io/blif.h"
#include "testlib/gen.h"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "make_fuzz_pair: %s\n", msg);
  std::fprintf(stderr,
               "usage: make_fuzz_pair --dir DIR --seed S [--cones N]\n"
               "                      [--edit "
               "equivalent|opaque|different|mixed]\n");
  std::exit(2);
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir, edit = "mixed";
  int cones = 6;
  std::uint64_t seed = 1;
  bool have_seed = false;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    auto next = [&]() -> std::string {
      if (a + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++a];
    };
    if (arg == "--dir") {
      dir = next();
    } else if (arg == "--seed") {
      seed = std::stoull(next());
      have_seed = true;
    } else if (arg == "--cones") {
      cones = std::stoi(next());
      if (cones < 1 || cones > 64) usage("--cones must be in 1..64");
    } else if (arg == "--edit") {
      edit = next();
      if (edit != "equivalent" && edit != "opaque" && edit != "different" &&
          edit != "mixed") {
        usage("--edit must be equivalent, opaque, different or mixed");
      }
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (dir.empty()) usage("need --dir");
  if (!have_seed) usage("need --seed (a fuzz case without one is not "
                        "reproducible)");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "make_fuzz_pair: cannot create %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return 1;
  }

  using eda::testlib::ConeEdit;
  // Modest sizes keep a single case sub-second even through the slowest
  // engine; the fuzz budget comes from running many seeds, not big ones.
  eda::circuit::GateNetlist a = eda::testlib::random_netlist_multi(
      seed, /*inputs=*/5, /*gates=*/8 * cones, /*ffs=*/3, cones);
  eda::circuit::GateNetlist b = a;
  // Edit decisions draw from their own stream (seed ^ salt) so they are
  // independent of the netlist structure draw.
  std::mt19937_64 rng(seed ^ 0xed17ULL);
  // For --edit different: exactly one seeded cone differs; the rest carry
  // an opaque edit so the pair still exercises the engine path.
  int diff_cone =
      static_cast<int>(rng() % static_cast<std::uint64_t>(cones));
  bool nonequiv = false;
  std::string first_diff;
  for (int i = 0; i < cones; ++i) {
    ConeEdit e;
    if (edit == "equivalent") {
      e = ConeEdit::Equivalent;
    } else if (edit == "opaque") {
      e = ConeEdit::EquivalentOpaque;
    } else if (edit == "different") {
      e = i == diff_cone ? ConeEdit::Different : ConeEdit::EquivalentOpaque;
    } else {  // mixed
      switch (rng() % 3) {
        case 0: e = ConeEdit::Equivalent; break;
        case 1: e = ConeEdit::EquivalentOpaque; break;
        default: e = ConeEdit::Different; break;
      }
    }
    if (e == ConeEdit::Different && first_diff.empty()) {
      nonequiv = true;
      first_diff = a.outputs()[static_cast<std::size_t>(i)].first;
    }
    b = eda::testlib::mutate_cone(b, static_cast<std::size_t>(i), e);
  }

  const std::string a_path = dir + "/a.blif";
  const std::string b_path = dir + "/b.blif";
  bool ok = write_file(a_path, eda::io::write_blif(a, "fuzz_a")) &&
            write_file(b_path, eda::io::write_blif(b, "fuzz_b")) &&
            write_file(dir + "/pair.manifest",
                       "blif:" + a_path + "," + b_path +
                           " eijk timeout=60 name=fuzz\n");
  if (!ok) {
    std::fprintf(stderr, "make_fuzz_pair: cannot write into %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf("seed=%llu cones=%d edit=%s\n",
              static_cast<unsigned long long>(seed), cones, edit.c_str());
  std::printf("expect=%s\n", nonequiv ? "NEQ" : "EQ");
  if (nonequiv) std::printf("expect_output=%s\n", first_diff.c_str());
  return 0;
}
