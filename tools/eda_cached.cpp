// eda_cached — the sharded remote theorem-cache daemon.
//
// Serves the length-prefixed framed cache protocol (service/remote_proto.h)
// over a unix or TCP socket: N store shards, each a (TheoremCache,
// VerdictCache) pair selected by the multiply-mixed alpha/structural hash
// of the key term, so many eda_service clients share one warm cache tier.
// Requests re-intern their terms through the kernel on decode, so
// alpha-equivalent goals from different clients land on the same entry.
//
//   eda_cached [options]
//
// options:
//   --socket PATH        listen on a unix socket (default
//                        /tmp/eda_cached.sock)
//   --listen HOST:PORT   listen on TCP instead (port 0 picks one and
//                        prints it)
//   --shards N           store shards, 1..256 (default 8)
//   --cache-file FILE    warm-start from FILE on boot and merge-on-save
//                        snapshot back to it (PR 8 lock-file union
//                        semantics, shared with --cache-file clients), so
//                        a restarted daemon comes back warm
//   --snapshot-ms N      also snapshot every N ms (default: only on
//                        shutdown)
//
// Speaks protocol v2 (batched LookupBatch/PublishBatch frames, negotiated
// per connection on Ping) while still serving v1 per-entry clients.
//
// A stale unix socket left by an unclean death (SIGKILL) is probed on
// boot: if nothing answers it is unlinked and rebound, so restarts never
// hit EADDRINUSE; if a live daemon answers, startup fails instead of
// stealing its socket.
//
// SIGINT/SIGTERM shut the daemon down cleanly: stop accepting, drain the
// connection handlers, write a final snapshot, exit 0.  Clients riding a
// RemoteBackend degrade to their in-process fallback and lose nothing.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "service/cache_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "eda_cached: %s\n", msg);
  std::fprintf(stderr,
               "usage: eda_cached [--socket PATH | --listen HOST:PORT]\n"
               "                  [--shards N] [--cache-file FILE]\n"
               "                  [--snapshot-ms N]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eda;

  service::CacheServerOptions opts;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    auto next = [&]() -> std::string {
      if (a + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++a];
    };
    try {
      std::size_t used = 0;
      if (arg == "--socket") opts.listen = "unix:" + next();
      else if (arg == "--listen") opts.listen = next();
      else if (arg == "--shards") {
        std::string v = next();
        int n = std::stoi(v, &used);
        if (used != v.size() || n < 1 || n > 256) {
          usage("--shards must be an integer in 1..256");
        }
        opts.shards = static_cast<std::size_t>(n);
      } else if (arg == "--cache-file") opts.cache_file = next();
      else if (arg == "--snapshot-ms") {
        std::string v = next();
        int n = std::stoi(v, &used);
        if (used != v.size() || n < 1 || n > 3'600'000) {
          usage("--snapshot-ms must be an integer in 1..3600000");
        }
        opts.snapshot_ms = n;
      } else usage(("unknown option " + arg).c_str());
    } catch (const std::logic_error&) {
      usage(("bad numeric value for " + arg).c_str());
    }
  }

  service::CacheServer server(opts);
  try {
    service::CacheLoadResult lr = server.start();
    if (!opts.cache_file.empty()) {
      std::printf("eda_cached: cache file %s: %s\n",
                  opts.cache_file.c_str(), lr.note.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "eda_cached: %s\n", e.what());
    return 1;
  }
  std::printf("eda_cached: serving on %s (%zu shard(s)%s)\n",
              server.listen_display().c_str(), opts.shards,
              opts.snapshot_ms > 0
                  ? (", snapshot every " + std::to_string(opts.snapshot_ms) +
                     " ms")
                        .c_str()
                  : "");
  if (server.port() != 0) {
    // Port 0 binds pick one; scripts parse this line to find it.
    std::printf("eda_cached: port %d\n", server.port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    // poll() as a portable interruptible sleep: a signal breaks it early.
    struct pollfd none {};
    none.fd = -1;
    ::poll(&none, 1, 200);
  }

  std::printf("eda_cached: shutting down\n");
  server.stop();
  service::CacheServerStats st = server.stats();
  std::printf(
      "eda_cached: served %llu lookup(s) (%llu hit(s)), %llu publish(es) "
      "(%llu batch frame(s)) over %llu connection(s) from %llu tenant(s); "
      "%zu theorem(s), %zu verdict(s) in store\n",
      static_cast<unsigned long long>(st.lookups),
      static_cast<unsigned long long>(st.lookup_hits),
      static_cast<unsigned long long>(st.publishes),
      static_cast<unsigned long long>(st.batch_frames),
      static_cast<unsigned long long>(st.connections),
      static_cast<unsigned long long>(st.tenants), st.theorem_entries,
      st.verdict_entries);
  return 0;
}
